//! Recovery events: the *reaction* side of the fault plane.
//!
//! `faults` injects disruptions; this module records what the simulated
//! stack does about them. Every self-healing action — a radio link
//! re-established after an outage, a TCP retransmission timeout collapsing
//! the window, a DASH segment abandoned and refetched at panic bitrate, a
//! web object wave timed out and retried — emits a [`RecoveryEvent`] into a
//! thread-local collector, when one is installed.
//!
//! The collector follows the same ambient-plane discipline as the fault
//! plane: installed per experiment thread by the supervised runner (only
//! when a fault scenario is active), cleared when the guard drops, and a
//! single thread-local boolean load when nothing is installed. Recording
//! never draws randomness, so collection cannot perturb simulation output;
//! with no collector installed the event stream is empty and the hook
//! points cost one load.

use std::cell::{Cell, RefCell};

/// The kinds of recovery action the stack can take, one per self-healing
/// mechanism across the radio/RRC/transport/application layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryKind {
    /// Radio link failure detected: the UE lost every usable radio
    /// (`radio::handoff`).
    RadioLinkFailure,
    /// RRC (re-)establishment completed after a link failure or a fault
    /// reset, paying the promotion cost (`radio::handoff`, `rrc::machine`).
    RrcReestablish,
    /// NSA anchor loss rode out on the LTE leg (`radio::handoff`).
    NsaFallback,
    /// Serving-cell reselection away from a dark tower (`radio::handoff`).
    CellReselect,
    /// TCP retransmission timeout fired; window collapsed, backoff doubled
    /// (`transport::tcp`).
    TcpRto,
    /// TCP fast retransmit: loss repaired by multiplicative decrease during
    /// a loss-burst window (`transport::tcp`).
    TcpFastRetransmit,
    /// TCP connection reset and re-established after repeated RTO backoff
    /// (`transport::tcp`).
    TcpConnReset,
    /// DASH segment abandoned mid-download and refetched (`video::player`).
    SegmentRetry,
    /// DASH bitrate panic-down to the lowest track on a segment retry
    /// (`video::player`).
    BitratePanic,
    /// Stall-triggered 5G→4G interface failover (`video::ifselect`).
    IfaceFailover,
    /// Web object wave timed out and was retried (`web::loader`).
    ObjectRetry,
    /// Web page completed without some objects: partial-page degradation
    /// (`web::loader`).
    PartialPage,
    /// Power monitor re-synced its sampling loop after a dropout window
    /// (`power::monitor`).
    MonitorResync,
}

impl RecoveryKind {
    /// All kinds, in a stable order (manifest keys derive from this).
    pub const ALL: [RecoveryKind; 13] = [
        RecoveryKind::RadioLinkFailure,
        RecoveryKind::RrcReestablish,
        RecoveryKind::NsaFallback,
        RecoveryKind::CellReselect,
        RecoveryKind::TcpRto,
        RecoveryKind::TcpFastRetransmit,
        RecoveryKind::TcpConnReset,
        RecoveryKind::SegmentRetry,
        RecoveryKind::BitratePanic,
        RecoveryKind::IfaceFailover,
        RecoveryKind::ObjectRetry,
        RecoveryKind::PartialPage,
        RecoveryKind::MonitorResync,
    ];

    /// Stable name, used in manifests and resilience tables.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryKind::RadioLinkFailure => "radio-link-failure",
            RecoveryKind::RrcReestablish => "rrc-reestablish",
            RecoveryKind::NsaFallback => "nsa-fallback",
            RecoveryKind::CellReselect => "cell-reselect",
            RecoveryKind::TcpRto => "tcp-rto",
            RecoveryKind::TcpFastRetransmit => "tcp-fast-retransmit",
            RecoveryKind::TcpConnReset => "tcp-conn-reset",
            RecoveryKind::SegmentRetry => "segment-retry",
            RecoveryKind::BitratePanic => "bitrate-panic",
            RecoveryKind::IfaceFailover => "iface-failover",
            RecoveryKind::ObjectRetry => "object-retry",
            RecoveryKind::PartialPage => "partial-page",
            RecoveryKind::MonitorResync => "monitor-resync",
        }
    }
}

/// One recovery action taken by the simulated stack.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Simulated time the action fired/completed, seconds.
    pub t_s: f64,
    /// What the stack did.
    pub kind: RecoveryKind,
    /// Detection latency: how long the impairment ran before the stack
    /// noticed, seconds.
    pub detect_s: f64,
    /// Duration of the outage/impairment recovered from, seconds (0 when
    /// the action is instantaneous, e.g. a fast retransmit).
    pub outage_s: f64,
    /// Component-specific note (which tower, which track, backoff count…).
    pub detail: String,
}

thread_local! {
    /// Fast flag: true iff a collector is installed on this thread.
    static COLLECT_ON: Cell<bool> = const { Cell::new(false) };
    /// The installed collector.
    static COLLECTOR: RefCell<Option<Vec<RecoveryEvent>>> = const { RefCell::new(None) };
}

/// Clears the ambient collector when dropped.
#[must_use = "the collector uninstalls when this guard drops"]
pub struct CollectorGuard {
    _private: (),
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        COLLECTOR.with(|c| *c.borrow_mut() = None);
        COLLECT_ON.with(|f| f.set(false));
    }
}

/// Installs an empty recovery collector on this thread. The previous
/// collector (if any) is replaced. Uninstalls when the guard drops.
pub fn collect() -> CollectorGuard {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Vec::new()));
    COLLECT_ON.with(|f| f.set(true));
    CollectorGuard { _private: () }
}

/// True iff a collector is installed on this thread — one thread-local
/// load, the cost of every hook point on the default path.
#[inline]
pub fn enabled() -> bool {
    COLLECT_ON.with(|f| f.get())
}

/// Records one recovery event into the ambient collector; a no-op (one
/// boolean load) when none is installed. The `detail` closure only runs
/// when a collector is present, so building the note is free on the
/// default path.
#[inline]
pub fn record(
    kind: RecoveryKind,
    t_s: f64,
    detect_s: f64,
    outage_s: f64,
    detail: impl FnOnce() -> String,
) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(events) = c.borrow_mut().as_mut() {
            events.push(RecoveryEvent {
                t_s,
                kind,
                detect_s,
                outage_s,
                detail: detail(),
            });
        }
    });
}

/// Takes every event collected so far, leaving the collector installed and
/// empty. Returns an empty vector when no collector is installed.
pub fn drain() -> Vec<RecoveryEvent> {
    COLLECTOR.with(|c| {
        c.borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    })
}

/// Aggregate statistics over one experiment's recovery-event stream — the
/// per-experiment row of the resilience table.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySummary {
    /// Total recovery actions.
    pub events: usize,
    /// Total outage/impairment time recovered from, seconds.
    pub outage_s: f64,
    /// Mean detection latency across events, seconds (0 with no events).
    pub mean_detect_s: f64,
    /// Rebuffer-shaped outage: stall time absorbed by the video-layer
    /// recoveries (segment retries, panic-downs, interface failovers), s.
    pub rebuffer_s: f64,
    /// Interface/leg failovers (5G→4G failover + NSA fallbacks).
    pub failovers: usize,
    /// Event counts per kind, in [`RecoveryKind::ALL`] order, zero-count
    /// kinds omitted.
    pub by_kind: Vec<(String, usize)>,
}

impl RecoverySummary {
    /// The empty summary (no recovery events).
    pub fn empty() -> Self {
        RecoverySummary {
            events: 0,
            outage_s: 0.0,
            mean_detect_s: 0.0,
            rebuffer_s: 0.0,
            failovers: 0,
            by_kind: Vec::new(),
        }
    }
}

/// Summarizes an event stream.
pub fn summarize(events: &[RecoveryEvent]) -> RecoverySummary {
    if events.is_empty() {
        return RecoverySummary::empty();
    }
    // `+ 0.0` normalizes the empty-sum identity (-0.0) to +0.0 so the
    // rendered tables never show "-0.00".
    let outage_s = events.iter().map(|e| e.outage_s).sum::<f64>() + 0.0;
    let mean_detect_s = events.iter().map(|e| e.detect_s).sum::<f64>() / events.len() as f64;
    let rebuffer_s = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                RecoveryKind::SegmentRetry
                    | RecoveryKind::BitratePanic
                    | RecoveryKind::IfaceFailover
            )
        })
        .map(|e| e.outage_s)
        .sum::<f64>()
        + 0.0;
    let failovers = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                RecoveryKind::IfaceFailover | RecoveryKind::NsaFallback
            )
        })
        .count();
    let by_kind = RecoveryKind::ALL
        .iter()
        .filter_map(|k| {
            let n = events.iter().filter(|e| e.kind == *k).count();
            (n > 0).then(|| (k.name().to_string(), n))
        })
        .collect();
    RecoverySummary {
        events: events.len(),
        outage_s,
        mean_detect_s,
        rebuffer_s,
        failovers,
        by_kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_without_collector_is_a_noop() {
        assert!(!enabled());
        record(RecoveryKind::TcpRto, 1.0, 0.5, 2.0, || "x".into());
        assert!(drain().is_empty());
    }

    #[test]
    fn collector_gathers_and_clears() {
        {
            let _guard = collect();
            assert!(enabled());
            record(RecoveryKind::TcpRto, 1.0, 0.5, 2.0, || "a".into());
            record(RecoveryKind::SegmentRetry, 2.0, 0.1, 3.0, || "b".into());
            let events = drain();
            assert_eq!(events.len(), 2);
            assert_eq!(events[0].kind, RecoveryKind::TcpRto);
            // Drain leaves the collector installed and empty.
            assert!(enabled());
            assert!(drain().is_empty());
            record(RecoveryKind::TcpRto, 3.0, 0.5, 2.0, || "c".into());
            assert_eq!(drain().len(), 1);
        }
        assert!(!enabled());
        assert!(drain().is_empty());
    }

    #[test]
    fn detail_closure_is_lazy() {
        // Without a collector the detail closure must not run.
        record(RecoveryKind::TcpRto, 1.0, 0.0, 0.0, || {
            panic!("detail built on the disabled path")
        });
    }

    #[test]
    fn summary_aggregates_by_kind() {
        let events = vec![
            RecoveryEvent {
                t_s: 1.0,
                kind: RecoveryKind::TcpRto,
                detect_s: 1.0,
                outage_s: 4.0,
                detail: String::new(),
            },
            RecoveryEvent {
                t_s: 2.0,
                kind: RecoveryKind::IfaceFailover,
                detect_s: 0.5,
                outage_s: 2.0,
                detail: String::new(),
            },
            RecoveryEvent {
                t_s: 3.0,
                kind: RecoveryKind::TcpRto,
                detect_s: 1.5,
                outage_s: 6.0,
                detail: String::new(),
            },
        ];
        let s = summarize(&events);
        assert_eq!(s.events, 3);
        assert!((s.outage_s - 12.0).abs() < 1e-12);
        assert!((s.mean_detect_s - 1.0).abs() < 1e-12);
        assert!((s.rebuffer_s - 2.0).abs() < 1e-12);
        assert_eq!(s.failovers, 1);
        assert_eq!(
            s.by_kind,
            vec![
                ("tcp-rto".to_string(), 2),
                ("iface-failover".to_string(), 1)
            ]
        );
    }

    #[test]
    fn empty_summary_is_zeroed() {
        assert_eq!(summarize(&[]), RecoverySummary::empty());
    }

    #[test]
    fn kind_names_are_unique_and_cover_all() {
        let names: std::collections::HashSet<_> =
            RecoveryKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), RecoveryKind::ALL.len());
    }
}
