//! Deterministic event-driven simulation kernel for the `fiveg-wild` workspace.
//!
//! Every experiment in this reproduction of *"A Variegated Look at 5G in the
//! Wild"* (SIGCOMM 2021) runs on top of this crate. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//! * [`rng::RngStream`] — named, seeded random-number streams so that every
//!   stochastic component of the simulated "field" is reproducible,
//! * [`event::EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking,
//! * [`stats`] — summary statistics (means, percentiles, CDFs, regressions)
//!   used to aggregate measurement campaigns the way the paper does
//!   (e.g. 95th-percentile Speedtest results),
//! * [`series::TimeSeries`] — timestamped samples with integration and
//!   resampling, used for power traces (5 kHz "Monsoon" sampling) and
//!   per-second throughput traces,
//! * [`faults`] — a deterministic fault-injection plane: seeded, named
//!   disruption events (cell outages, blockage storms, RRC resets, loss
//!   bursts, …) that components consult through a thread-local ambient
//!   schedule, off by default and free when off,
//! * [`budget`] — per-thread event budgets so a supervised runner can kill
//!   runaway experiments deterministically,
//! * [`cancel`] — the cooperative cancellation plane: a per-attempt shared
//!   token (kill flag + optional deadline) observed from the budget hot
//!   path, so a supervising thread can ask an experiment to unwind and
//!   actually exit instead of abandoning its thread; bit-identical and one
//!   branch when disarmed,
//! * [`recovery`] — the reaction side of the fault plane: a thread-local
//!   collector of structured recovery events (link re-establishments, TCP
//!   RTOs, segment retries, interface failovers, …) emitted by the stack's
//!   self-healing hooks and aggregated into per-experiment resilience
//!   summaries,
//! * [`telemetry`] — the deterministic observability plane: sim-time
//!   spans (RAII enter/exit), counters, gauges, and fixed-bucket
//!   histograms, installed per attempt like the other planes, bit-identical
//!   off, and feature-gated (`telemetry`, on by default) for a provably
//!   uninstrumented build,
//! * [`guard`] — the runtime invariant plane: structural checks (value
//!   ranges, conservation laws, state-transition legality) evaluated
//!   *inside* the running simulators, recorded per attempt with sim-time
//!   context under a record/warn/fail-fast policy, feature-gated
//!   (`guards`, on by default) and bit-identical off.
//!
//! The kernel is single-threaded and allocation-light by design: determinism
//! is a feature, because the "field" this workspace measures is itself a
//! simulation that must be re-runnable bit-for-bit.

pub mod ambient;
pub mod budget;
pub mod cancel;
pub mod event;
pub mod faults;
pub mod guard;
pub mod recovery;
pub mod rng;
pub mod series;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod units;

pub use event::EventQueue;
pub use rng::RngStream;
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
