//! Summary statistics used to aggregate measurement campaigns.
//!
//! The paper reports 95th-percentile Speedtest results, CDFs of page-load
//! times, mean absolute percentage errors of power models, and least-squares
//! slopes of throughput–power curves. This module provides those primitives.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `NaN` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Harmonic mean; `NaN` for empty input, 0 if any element is ≤ 0.
///
/// The throughput predictor of FastMPC uses the harmonic mean of past
/// observed chunk throughputs.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`; `NaN` for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Mean absolute percentage error of `predicted` against `actual`, in
/// percent. Pairs whose actual value is zero are skipped.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mape: length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept)`. Requires at least two points with distinct
/// x values; otherwise returns `(NaN, NaN)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return (f64::NAN, f64::NAN);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return (f64::NAN, f64::NAN);
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let _ = n;
    (slope, my - slope * mx)
}

/// Coefficient of determination R² of `predicted` against `actual`.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "r_squared: length mismatch");
    let my = mean(actual);
    let ss_tot: f64 = actual.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return f64::NAN;
    }
    1.0 - ss_res / ss_tot
}

/// An empirical CDF over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the CDF from a sample (NaNs are dropped).
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ecdf { sorted }
    }

    /// Fraction of the sample ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q * 100.0)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the CDF at `n` evenly spaced points spanning the sample
    /// range, returning `(x, F(x))` pairs — the series the paper's CDF plots
    /// (Fig 20) show.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Streaming mean/min/max/count accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[1.0, 4.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert!(harmonic_mean(&[]).is_nan());
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((percentile(&xs, 95.0) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let actual = [100.0, 0.0, 200.0];
        let predicted = [110.0, 42.0, 180.0];
        assert!((mape(&actual, &predicted) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        let (s, i) = linear_fit(&[1.0], &[2.0]);
        assert!(s.is_nan() && i.is_nan());
        let (s, i) = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
        assert!(s.is_nan() && i.is_nan());
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let a = [1.0, 2.0, 3.0];
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
        assert!((r_squared(&a, &[2.0, 2.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let cdf = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.5);
        let curve = cdf.curve(4);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].0, 1.0);
        assert_eq!(curve[3], (4.0, 1.0));
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = Accumulator::new();
        for x in [3.0, -1.0, 5.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.min(), -1.0);
        assert_eq!(acc.max(), 5.0);
        assert!((acc.mean() - 7.0 / 3.0).abs() < 1e-12);
    }
}
