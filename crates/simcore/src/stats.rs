//! Summary statistics used to aggregate measurement campaigns.
//!
//! The paper reports 95th-percentile Speedtest results, CDFs of page-load
//! times, mean absolute percentage errors of power models, and least-squares
//! slopes of throughput–power curves. This module provides those primitives.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; `NaN` for an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Harmonic mean; `NaN` for empty input, 0 if any element is ≤ 0.
///
/// The throughput predictor of FastMPC uses the harmonic mean of past
/// observed chunk throughputs. Callers averaging measurement windows that
/// may contain stall samples (zero throughput) almost always want
/// [`harmonic_mean_positive`] instead: a single zero here collapses the
/// whole window to 0.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    if xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    xs.len() as f64 / xs.iter().map(|x| 1.0 / x).sum::<f64>()
}

/// Harmonic mean over the strictly positive, finite samples of `xs`;
/// `NaN` when no sample qualifies.
///
/// This is the stall-tolerant window average: a zero-throughput sample (a
/// stall under chaos) is dropped rather than collapsing the mean to 0 the
/// way [`harmonic_mean`] does.
pub fn harmonic_mean_positive(xs: &[f64]) -> f64 {
    let mut n = 0usize;
    let mut inv_sum = 0.0f64;
    for &x in xs {
        if x > 0.0 && x.is_finite() {
            n += 1;
            inv_sum += 1.0 / x;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        n as f64 / inv_sum
    }
}

/// Linear-interpolated percentile, `p` in `[0, 100]`; `NaN` for empty
/// input. NaN samples are dropped (mirroring [`Ecdf::new`]); all-NaN
/// input yields `NaN`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Mean absolute percentage error of `predicted` against `actual`, in
/// percent. Pairs whose actual value is zero are skipped.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "mape: length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        100.0 * sum / n as f64
    }
}

/// Ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Returns `(slope, intercept)`. Requires at least two points with distinct
/// x values; otherwise returns `(NaN, NaN)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "linear_fit: length mismatch");
    if xs.len() < 2 {
        return (f64::NAN, f64::NAN);
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return (f64::NAN, f64::NAN);
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Coefficient of determination R² of `predicted` against `actual`.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "r_squared: length mismatch");
    let my = mean(actual);
    let ss_tot: f64 = actual.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return f64::NAN;
    }
    1.0 - ss_res / ss_tot
}

/// An empirical CDF over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the CDF from a sample (NaNs are dropped).
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ecdf { sorted }
    }

    /// Fraction of the sample ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q * 100.0)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the CDF at `n` evenly spaced points spanning the sample
    /// range, returning `(x, F(x))` pairs — the series the paper's CDF plots
    /// (Fig 20) show.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Streaming mean/min/max/count accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Verdict of a tolerance check (the paper-fidelity validation plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grade {
    /// Within the warn band.
    Pass,
    /// Outside the warn band but inside the fail band: drift worth eyes,
    /// not worth failing the build.
    Warn,
    /// Outside the fail band (or not a finite number at all).
    Fail,
}

impl Grade {
    /// Fixed-width label for report rows.
    pub fn as_str(self) -> &'static str {
        match self {
            Grade::Pass => "PASS",
            Grade::Warn => "WARN",
            Grade::Fail => "FAIL",
        }
    }
}

/// A two-level relative tolerance band around an expected value.
///
/// Drift within `warn_pct` grades `Pass`, within `fail_pct` grades
/// `Warn`, beyond it `Fail`. Bands are percentages of the expected value
/// (`expected == 0` falls back to absolute drift against the bands
/// divided by 100, so zero expectations stay checkable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Pass/Warn boundary, percent.
    pub warn_pct: f64,
    /// Warn/Fail boundary, percent.
    pub fail_pct: f64,
}

impl Tolerance {
    /// A band pair (warn%, fail%).
    pub fn pct(warn_pct: f64, fail_pct: f64) -> Self {
        Tolerance { warn_pct, fail_pct }
    }

    /// Signed relative drift of `actual` from `expected`, percent.
    /// Absolute drift × 100 when `expected` is zero.
    pub fn drift_pct(expected: f64, actual: f64) -> f64 {
        if expected == 0.0 {
            (actual - expected) * 100.0
        } else {
            (actual - expected) / expected.abs() * 100.0
        }
    }

    /// Grades `actual` against `expected` under this band pair.
    pub fn grade(&self, expected: f64, actual: f64) -> Grade {
        if !actual.is_finite() {
            return Grade::Fail;
        }
        let drift = Self::drift_pct(expected, actual).abs();
        if drift <= self.warn_pct {
            Grade::Pass
        } else if drift <= self.fail_pct {
            Grade::Warn
        } else {
            Grade::Fail
        }
    }
}

/// Every decimal number embedded in `s`, in order. Tolerant of units and
/// punctuation (`"1097 (1092)"` → `[1097.0, 1092.0]`, `"84.7%"` →
/// `[84.7]`, `"[-110,-100)"` → `[-110.0, -100.0]`); placeholder cells
/// (`"N/A"`, `"-"`, `"inf"`) contribute nothing.
pub fn numbers_in(s: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let neg = c == '-'
            && i + 1 < bytes.len()
            && (bytes[i + 1] as char).is_ascii_digit()
            // "10-20" is a range, not ten and minus-twenty.
            && (i == 0 || !(bytes[i - 1] as char).is_ascii_digit());
        if c.is_ascii_digit() || neg {
            let start = i;
            i += 1;
            let mut seen_dot = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.'
                    && !seen_dot
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    seen_dot = true;
                    i += 1;
                } else {
                    break;
                }
            }
            if let Ok(v) = s[start..i].parse::<f64>() {
                out.push(v);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// First number embedded in `s`, if any.
pub fn first_number(s: &str) -> Option<f64> {
    numbers_in(s).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn harmonic_mean_basics() {
        assert!((harmonic_mean(&[1.0, 4.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert!(harmonic_mean(&[]).is_nan());
    }

    #[test]
    fn harmonic_mean_positive_drops_stall_samples() {
        // Regression: a single zero sample used to collapse the plain
        // harmonic mean to 0; the positive variant ignores it.
        assert_eq!(harmonic_mean(&[100.0, 0.0, 100.0]), 0.0);
        assert!((harmonic_mean_positive(&[100.0, 0.0, 100.0]) - 100.0).abs() < 1e-12);
        assert!((harmonic_mean_positive(&[1.0, 4.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!(
            (harmonic_mean_positive(&[-5.0, f64::INFINITY, f64::NAN, 2.0]) - 2.0).abs() < 1e-12
        );
        assert!(harmonic_mean_positive(&[]).is_nan());
        assert!(harmonic_mean_positive(&[0.0, -1.0]).is_nan());
    }

    #[test]
    fn percentile_tolerates_nans() {
        // Regression: this panicked ("NaN in percentile input") before
        // NaNs were filtered like Ecdf::new does.
        let xs = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(median(&xs), 2.0);
        assert!(percentile(&[f64::NAN, f64::NAN], 50.0).is_nan());
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((percentile(&xs, 95.0) - 3.85).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let actual = [100.0, 0.0, 200.0];
        let predicted = [110.0, 42.0, 180.0];
        assert!((mape(&actual, &predicted) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let (slope, intercept) = linear_fit(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        let (s, i) = linear_fit(&[1.0], &[2.0]);
        assert!(s.is_nan() && i.is_nan());
        let (s, i) = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
        assert!(s.is_nan() && i.is_nan());
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let a = [1.0, 2.0, 3.0];
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
        assert!((r_squared(&a, &[2.0, 2.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let cdf = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(2.0), 0.5);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.5);
        let curve = cdf.curve(4);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].0, 1.0);
        assert_eq!(curve[3], (4.0, 1.0));
    }

    #[test]
    fn ecdf_curve_degenerate_all_equal_sample() {
        // All-equal samples span zero range: every evaluation point is the
        // sample itself, where the CDF has already jumped to 1.
        let cdf = Ecdf::new(&[5.0, 5.0, 5.0]);
        let curve = cdf.curve(4);
        assert_eq!(curve.len(), 4);
        for (x, f) in curve {
            assert_eq!(x, 5.0);
            assert_eq!(f, 1.0);
        }
    }

    #[test]
    fn tolerance_grades_in_bands() {
        let tol = Tolerance::pct(5.0, 20.0);
        assert_eq!(tol.grade(100.0, 103.0), Grade::Pass);
        assert_eq!(tol.grade(100.0, 110.0), Grade::Warn);
        assert_eq!(tol.grade(100.0, 130.0), Grade::Fail);
        assert_eq!(tol.grade(100.0, f64::NAN), Grade::Fail);
        // Zero expectations use absolute drift ×100 against the bands.
        assert_eq!(tol.grade(0.0, 0.0003), Grade::Pass);
        assert_eq!(tol.grade(0.0, 0.5), Grade::Fail);
        assert!((Tolerance::drift_pct(200.0, 190.0) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn numbers_in_scans_report_cells() {
        assert_eq!(numbers_in("1097 (1092)"), vec![1097.0, 1092.0]);
        assert_eq!(numbers_in("84.7%"), vec![84.7]);
        assert_eq!(numbers_in("[-110,-100)"), vec![-110.0, -100.0]);
        assert_eq!(numbers_in("10-20"), vec![10.0, 20.0]);
        assert_eq!(numbers_in("N/A - inf"), Vec::<f64>::new());
        assert_eq!(first_number("T=1s (J)"), Some(1.0));
        assert_eq!(first_number("none"), None);
    }

    #[test]
    fn accumulator_tracks_extremes() {
        let mut acc = Accumulator::new();
        for x in [3.0, -1.0, 5.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.min(), -1.0);
        assert_eq!(acc.max(), 5.0);
        assert!((acc.mean() - 7.0 / 3.0).abs() < 1e-12);
    }
}
