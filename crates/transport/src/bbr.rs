//! BBR congestion control, fluid-model flavour.
//!
//! The controller keeps the two model parameters of real BBR — the
//! bottleneck bandwidth `BtlBw` (windowed max of delivered rate) and the
//! round-trip propagation delay `RTprop` (windowed min of measured RTT) —
//! and drives the pacing rate through the classic state machine:
//!
//! * **STARTUP**: pacing gain 2/ln 2 ≈ 2.885 doubles the rate per RTT
//!   until three rounds bring < 25% bandwidth growth (the pipe is full);
//! * **DRAIN**: the inverse gain empties the queue STARTUP built;
//! * **PROBE_BW**: the eight-phase gain cycle (1.25, 0.75, six × 1.0)
//!   probes for more bandwidth, then drains what the probe queued;
//! * **PROBE_RTT**: every 10 s the window collapses to 4 packets for
//!   200 ms so RTprop can be re-observed without self-queueing.
//!
//! Loss is deliberately *not* a control signal (the controller is
//! model-based, which is exactly why it holds goodput on the lossy
//! long-haul paths where CUBIC collapses — see `ablation-cc`); an RTO is,
//! and resets the model to STARTUP.

use fiveg_simcore::{guard, telemetry};
use std::collections::VecDeque;

/// STARTUP/DRAIN pacing gains: 2/ln 2 and its inverse.
pub const STARTUP_GAIN: f64 = 2.885;
/// DRAIN pacing gain (1 / STARTUP_GAIN).
pub const DRAIN_GAIN: f64 = 1.0 / 2.885;
/// The PROBE_BW pacing-gain cycle: probe up, drain, then cruise.
pub const PROBE_BW_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd gain outside PROBE_RTT: two BDPs of headroom for delayed ACKs.
pub const CWND_GAIN: f64 = 2.0;
/// BtlBw filter window, in RTprops.
pub const BTLBW_WINDOW_RTTS: f64 = 10.0;
/// RTprop filter window, seconds.
pub const RTPROP_WINDOW_S: f64 = 10.0;
/// How often PROBE_RTT re-measures the propagation delay, seconds.
pub const PROBE_RTT_INTERVAL_S: f64 = 10.0;
/// How long PROBE_RTT holds the floor window, seconds.
pub const PROBE_RTT_DURATION_S: f64 = 0.2;
/// The PROBE_RTT congestion window, packets.
pub const PROBE_RTT_CWND_PKTS: f64 = 4.0;
/// STARTUP exits when BtlBw grew less than this factor…
pub const FULL_BW_THRESH: f64 = 1.25;
/// …for this many consecutive rounds.
pub const FULL_BW_ROUNDS: u32 = 3;

/// BBR state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrState {
    /// Exponential rate ramp until the pipe is full.
    Startup,
    /// Empty the queue STARTUP built.
    Drain,
    /// Steady-state gain cycling around BtlBw.
    ProbeBw,
    /// Periodic floor-window RTprop re-measurement.
    ProbeRtt,
}

impl BbrState {
    /// Stable name, for telemetry and debugging.
    pub fn as_str(self) -> &'static str {
        match self {
            BbrState::Startup => "startup",
            BbrState::Drain => "drain",
            BbrState::ProbeBw => "probe-bw",
            BbrState::ProbeRtt => "probe-rtt",
        }
    }
}

/// Windowed max filter: the deque holds `(time, value)` with strictly
/// descending values, so the front is always the max of the window.
#[derive(Debug, Clone, Default)]
pub struct WindowedMax {
    samples: VecDeque<(f64, f64)>,
}

impl WindowedMax {
    /// Admits a sample at time `t` and expires entries older than
    /// `window_s`.
    pub fn update(&mut self, t: f64, v: f64, window_s: f64) {
        while self.samples.back().is_some_and(|&(_, bv)| bv <= v) {
            self.samples.pop_back();
        }
        self.samples.push_back((t, v));
        while self
            .samples
            .front()
            .is_some_and(|&(ft, _)| ft < t - window_s)
        {
            self.samples.pop_front();
        }
    }

    /// The windowed maximum (0 when empty).
    pub fn get(&self) -> f64 {
        self.samples.front().map_or(0.0, |&(_, v)| v)
    }

    /// The filter invariant: timestamps ascend and values descend
    /// front-to-back. Checked by the guard plane each sample.
    pub fn is_monotone(&self) -> bool {
        self.samples
            .iter()
            .zip(self.samples.iter().skip(1))
            .all(|(a, b)| a.0 <= b.0 && a.1 >= b.1)
    }
}

/// Windowed min filter: ascending values front-to-back, front is the min.
#[derive(Debug, Clone, Default)]
pub struct WindowedMin {
    samples: VecDeque<(f64, f64)>,
}

impl WindowedMin {
    /// Admits a sample at time `t` and expires entries older than
    /// `window_s`.
    pub fn update(&mut self, t: f64, v: f64, window_s: f64) {
        while self.samples.back().is_some_and(|&(_, bv)| bv >= v) {
            self.samples.pop_back();
        }
        self.samples.push_back((t, v));
        while self
            .samples
            .front()
            .is_some_and(|&(ft, _)| ft < t - window_s)
        {
            self.samples.pop_front();
        }
    }

    /// The windowed minimum (`f64::INFINITY` when empty).
    pub fn get(&self) -> f64 {
        self.samples.front().map_or(f64::INFINITY, |&(_, v)| v)
    }

    /// Timestamps ascend and values ascend front-to-back.
    pub fn is_monotone(&self) -> bool {
        self.samples
            .iter()
            .zip(self.samples.iter().skip(1))
            .all(|(a, b)| a.0 <= b.0 && a.1 <= b.1)
    }
}

/// One flow's BBR model and state machine.
#[derive(Debug, Clone)]
pub struct Bbr {
    state: BbrState,
    btlbw: WindowedMax,
    rtprop: WindowedMin,
    pacing_gain: f64,
    /// STARTUP plateau detection.
    full_bw_mbps: f64,
    full_bw_rounds: u32,
    round_start_s: f64,
    /// PROBE_BW gain-cycle position and phase start.
    cycle_idx: usize,
    cycle_stamp_s: f64,
    /// PROBE_RTT scheduling.
    next_probe_rtt_s: f64,
    probe_rtt_done_s: f64,
    /// Floor estimate before any delivery sample arrives, Mbps.
    init_rate_mbps: f64,
}

impl Bbr {
    /// A fresh controller starting in STARTUP at `init_rate_mbps`.
    pub fn new(init_rate_mbps: f64) -> Self {
        Bbr {
            state: BbrState::Startup,
            btlbw: WindowedMax::default(),
            rtprop: WindowedMin::default(),
            pacing_gain: STARTUP_GAIN,
            full_bw_mbps: 0.0,
            full_bw_rounds: 0,
            round_start_s: 0.0,
            cycle_idx: 0,
            cycle_stamp_s: 0.0,
            next_probe_rtt_s: PROBE_RTT_INTERVAL_S,
            probe_rtt_done_s: 0.0,
            init_rate_mbps: init_rate_mbps.max(0.1),
        }
    }

    /// Current state (for tests and reports).
    pub fn state(&self) -> BbrState {
        self.state
    }

    /// The bottleneck-bandwidth estimate, Mbps.
    pub fn btlbw_mbps(&self) -> f64 {
        let bw = self.btlbw.get();
        if bw > 0.0 {
            bw
        } else {
            self.init_rate_mbps
        }
    }

    /// The propagation-delay estimate, seconds (`fallback_s` until a
    /// sample lands).
    pub fn rtprop_s(&self, fallback_s: f64) -> f64 {
        let rt = self.rtprop.get();
        if rt.is_finite() {
            rt
        } else {
            fallback_s
        }
    }

    /// Current pacing gain.
    pub fn pacing_gain(&self) -> f64 {
        self.pacing_gain
    }

    /// The paced send rate, Mbps.
    pub fn pacing_rate_mbps(&self) -> f64 {
        (self.pacing_gain * self.btlbw_mbps()).max(0.1)
    }

    /// The cwnd-implied rate cap at effective RTT `rtt_s`: `CWND_GAIN`
    /// BDPs normally, the 4-packet floor window during PROBE_RTT.
    pub fn cwnd_rate_cap_mbps(&self, mss_bytes: f64, rtt_s: f64) -> f64 {
        let bdp_pkts = self.btlbw_mbps() * 1e6 / 8.0 * self.rtprop_s(rtt_s) / mss_bytes;
        let cwnd_pkts = match self.state {
            BbrState::ProbeRtt => PROBE_RTT_CWND_PKTS,
            _ => (CWND_GAIN * bdp_pkts).max(PROBE_RTT_CWND_PKTS),
        };
        (cwnd_pkts * mss_bytes * 8.0 / 1e6 / rtt_s.max(1e-6)).max(0.1)
    }

    /// Feeds one feedback sample: the flow's delivered rate, the measured
    /// RTT, and the bottleneck queueing delay at sim time `t`. Advances
    /// the state machine.
    pub fn on_sample(&mut self, t: f64, delivered_mbps: f64, rtt_s: f64, queue_delay_s: f64) {
        self.rtprop.update(t, rtt_s, RTPROP_WINDOW_S);
        let bw_window = BTLBW_WINDOW_RTTS * self.rtprop_s(rtt_s);
        self.btlbw.update(t, delivered_mbps, bw_window);
        let rtprop = self.rtprop_s(rtt_s);

        match self.state {
            BbrState::Startup => {
                // One plateau check per round trip.
                if t - self.round_start_s >= rtprop {
                    self.round_start_s = t;
                    if self.btlbw_mbps() < FULL_BW_THRESH * self.full_bw_mbps {
                        self.full_bw_rounds += 1;
                    } else {
                        self.full_bw_mbps = self.btlbw_mbps();
                        self.full_bw_rounds = 0;
                    }
                    if self.full_bw_rounds >= FULL_BW_ROUNDS {
                        self.enter(BbrState::Drain, t);
                    }
                }
            }
            BbrState::Drain => {
                if queue_delay_s <= 1e-4 {
                    self.enter(BbrState::ProbeBw, t);
                }
            }
            BbrState::ProbeBw => {
                if t - self.cycle_stamp_s >= rtprop {
                    self.cycle_idx = (self.cycle_idx + 1) % PROBE_BW_GAINS.len();
                    self.cycle_stamp_s = t;
                    self.pacing_gain = PROBE_BW_GAINS[self.cycle_idx];
                }
                if t >= self.next_probe_rtt_s {
                    self.enter(BbrState::ProbeRtt, t);
                }
            }
            BbrState::ProbeRtt => {
                if t >= self.probe_rtt_done_s {
                    self.next_probe_rtt_s = t + PROBE_RTT_INTERVAL_S;
                    self.enter(BbrState::ProbeBw, t);
                }
            }
        }

        // Controller invariants, checked in-flight by the guard plane:
        // the pacing gain must belong to the active state's gain set, and
        // both filters must hold their deque monotonicity.
        guard::check(
            "transport",
            "bbr-gain-cycle",
            self.gain_is_valid(),
            t,
            || {
                format!(
                    "pacing gain {} invalid in state {}",
                    self.pacing_gain,
                    self.state.as_str()
                )
            },
        );
        guard::check(
            "transport",
            "bbr-filter-monotone",
            self.btlbw.is_monotone() && self.rtprop.is_monotone(),
            t,
            || "BtlBw/RTprop filter deque lost monotonicity".to_string(),
        );
    }

    /// Loss is not a BBR control signal; the model absorbs it.
    pub fn on_loss(&mut self, _t: f64) {}

    /// A retransmission timeout invalidates the model: restart discovery.
    pub fn on_rto(&mut self, t: f64) {
        self.full_bw_mbps = 0.0;
        self.full_bw_rounds = 0;
        self.round_start_s = t;
        self.enter(BbrState::Startup, t);
    }

    fn enter(&mut self, next: BbrState, t: f64) {
        self.state = next;
        self.pacing_gain = match next {
            BbrState::Startup => STARTUP_GAIN,
            BbrState::Drain => DRAIN_GAIN,
            BbrState::ProbeBw => {
                self.cycle_idx = 0;
                self.cycle_stamp_s = t;
                PROBE_BW_GAINS[self.cycle_idx]
            }
            BbrState::ProbeRtt => {
                self.probe_rtt_done_s = t + PROBE_RTT_DURATION_S;
                1.0
            }
        };
        telemetry::count("transport/bbr/state_change", 1);
    }

    fn gain_is_valid(&self) -> bool {
        match self.state {
            BbrState::Startup => self.pacing_gain == STARTUP_GAIN,
            BbrState::Drain => self.pacing_gain == DRAIN_GAIN,
            BbrState::ProbeBw => PROBE_BW_GAINS.contains(&self.pacing_gain),
            BbrState::ProbeRtt => self.pacing_gain == 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_max_tracks_and_expires() {
        let mut f = WindowedMax::default();
        f.update(0.0, 5.0, 1.0);
        f.update(0.2, 3.0, 1.0);
        assert_eq!(f.get(), 5.0);
        f.update(0.4, 8.0, 1.0);
        assert_eq!(f.get(), 8.0, "larger sample displaces the front");
        f.update(1.6, 2.0, 1.0);
        assert_eq!(f.get(), 2.0, "the 8.0 at t=0.4 expired out of the window");
        assert!(f.is_monotone());
    }

    #[test]
    fn windowed_min_tracks_and_expires() {
        let mut f = WindowedMin::default();
        f.update(0.0, 0.020, 1.0);
        f.update(0.2, 0.030, 1.0);
        assert_eq!(f.get(), 0.020);
        f.update(0.4, 0.010, 1.0);
        assert_eq!(f.get(), 0.010);
        f.update(1.6, 0.025, 1.0);
        assert_eq!(f.get(), 0.025, "old min expired");
        assert!(f.is_monotone());
    }

    #[test]
    fn startup_exits_to_drain_on_plateau() {
        let mut bbr = Bbr::new(10.0);
        assert_eq!(bbr.state(), BbrState::Startup);
        // Growing bandwidth keeps STARTUP alive…
        let mut t = 0.0;
        let mut bw = 10.0;
        for _ in 0..20 {
            bbr.on_sample(t, bw, 0.02, 0.0);
            bw *= 1.5;
            t += 0.02;
        }
        assert_eq!(bbr.state(), BbrState::Startup);
        // …a plateau ends it within FULL_BW_ROUNDS rounds.
        for _ in 0..8 {
            bbr.on_sample(t, bw, 0.02, 0.005);
            t += 0.02;
        }
        assert_ne!(bbr.state(), BbrState::Startup, "plateau must exit STARTUP");
    }

    #[test]
    fn drain_hands_off_to_probe_bw_when_queue_empties() {
        let mut bbr = Bbr::new(100.0);
        let mut t = 0.0;
        // Plateau out of STARTUP.
        for _ in 0..30 {
            bbr.on_sample(t, 100.0, 0.02, 0.01);
            t += 0.02;
        }
        assert_eq!(bbr.state(), BbrState::Drain);
        assert!((bbr.pacing_gain() - DRAIN_GAIN).abs() < 1e-12);
        bbr.on_sample(t, 100.0, 0.02, 0.0);
        assert_eq!(bbr.state(), BbrState::ProbeBw);
        assert!(PROBE_BW_GAINS.contains(&bbr.pacing_gain()));
    }

    #[test]
    fn probe_rtt_fires_on_schedule_and_returns() {
        let mut bbr = Bbr::new(100.0);
        let mut t = 0.0;
        while t < PROBE_RTT_INTERVAL_S + 1.0 {
            bbr.on_sample(t, 100.0, 0.02, 0.0);
            if bbr.state() == BbrState::ProbeRtt {
                break;
            }
            t += 0.01;
        }
        assert_eq!(
            bbr.state(),
            BbrState::ProbeRtt,
            "10 s must trigger PROBE_RTT"
        );
        let cap = bbr.cwnd_rate_cap_mbps(1460.0, 0.02);
        let floor = PROBE_RTT_CWND_PKTS * 1460.0 * 8.0 / 1e6 / 0.02;
        assert!(
            (cap - floor).abs() < 1e-6,
            "PROBE_RTT pins the window to 4 packets: {cap} vs {floor}"
        );
        for _ in 0..((PROBE_RTT_DURATION_S / 0.01) as usize + 2) {
            t += 0.01;
            bbr.on_sample(t, 100.0, 0.02, 0.0);
        }
        assert_eq!(bbr.state(), BbrState::ProbeBw, "PROBE_RTT is 200 ms long");
    }

    #[test]
    fn rto_resets_the_model_to_startup() {
        let mut bbr = Bbr::new(100.0);
        let mut t = 0.0;
        for _ in 0..30 {
            bbr.on_sample(t, 100.0, 0.02, 0.01);
            t += 0.02;
        }
        assert_ne!(bbr.state(), BbrState::Startup);
        bbr.on_rto(t);
        assert_eq!(bbr.state(), BbrState::Startup);
        assert!((bbr.pacing_gain() - STARTUP_GAIN).abs() < 1e-12);
    }

    #[test]
    fn pacing_rate_follows_gain_times_btlbw() {
        let mut bbr = Bbr::new(50.0);
        bbr.on_sample(0.0, 200.0, 0.02, 0.0);
        let rate = bbr.pacing_rate_mbps();
        assert!(
            (rate - STARTUP_GAIN * 200.0).abs() < 1e-9,
            "startup pacing {rate}"
        );
    }
}
