//! End-to-end path models: UE → radio → carrier core → Internet → server.
//!
//! A [`PathModel`] is the transport layer's view of one `<UE, radio link,
//! server>` combination: base RTT, random loss, and the bottleneck capacity.
//!
//! Calibration notes (§3.2):
//!
//! * RTT = radio access latency (band-dependent: ≈5 ms mmWave, ≈12 ms
//!   low-band, ≈19 ms LTE one-way-pair) + fiber propagation with a routing
//!   inflation factor + ~1 ms server turnaround. The minimum mmWave RTT to
//!   a ~3 km server comes out ≈6 ms, doubling by ≈320 km, matching Fig 2.
//! * Loss grows with path length (more hops, more shallow buffers): the
//!   paper measured <1% even at 3 Gbps; we use a per-packet probability of
//!   `2·10⁻⁷ + 1.2·10⁻⁷ per 100 km`.

use fiveg_geo::servers::ServerInfo;
use fiveg_radio::band::Direction;
use fiveg_radio::link::{link_capacity_mbps, LinkState};
use fiveg_radio::ue::UeModel;
use fiveg_simcore::units::fiber_rtt_ms;

/// Routing inflation: real Internet paths are ~70% longer than great
/// circles.
pub const ROUTE_INFLATION: f64 = 1.7;

/// Server processing + local-loop overhead added to every RTT, in ms.
pub const SERVER_TURNAROUND_MS: f64 = 1.0;

/// Base per-packet loss probability on a minimal path.
pub const BASE_LOSS: f64 = 2.0e-7;

/// Additional per-packet loss probability per kilometre of path.
pub const LOSS_PER_KM: f64 = 1.2e-9;

/// Default bottleneck buffer depth as a multiple of the path BDP — one
/// BDP of buffering, the classic router-sizing rule. The rate-based
/// controllers (BBR, NADA) turn this into a queueing-delay term; the
/// fluid window engine keeps modelling the same buffer as overflow loss.
pub const DEFAULT_QUEUE_BDP: f64 = 1.0;

/// The transport-layer view of one UE↔server path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathModel {
    /// Base round-trip time in milliseconds (no queueing).
    pub rtt_ms: f64,
    /// Per-packet random loss probability.
    pub loss_per_pkt: f64,
    /// Bottleneck capacity in Mbps (radio link vs server cap).
    pub capacity_mbps: f64,
    /// Maximum segment size in bytes.
    pub mss_bytes: f64,
    /// Bottleneck buffer depth as a multiple of the BDP (the queueing
    /// model: a backlog of one full buffer adds `queue_bdp × rtt` of
    /// queueing delay).
    pub queue_bdp: f64,
}

impl PathModel {
    /// Builds the path for `ue` on `link` testing against `server` in
    /// direction `dir`. `ue_location` is the UE's coordinates for distance.
    pub fn build(
        ue: UeModel,
        link: &LinkState,
        server: &ServerInfo,
        ue_location: fiveg_geo::LatLon,
        dir: Direction,
    ) -> PathModel {
        let dist_km = server.distance_km(ue_location);
        let radio_rtt = link.band.class().radio_rtt_ms();
        let rtt_ms = radio_rtt + fiber_rtt_ms(dist_km, ROUTE_INFLATION) + SERVER_TURNAROUND_MS;
        let radio_cap = link_capacity_mbps(ue, link, dir);
        let mut capacity = radio_cap * server.path_efficiency;
        if let Some(cap) = server.cap_mbps {
            capacity = capacity.min(cap);
        }
        PathModel {
            rtt_ms,
            loss_per_pkt: BASE_LOSS + LOSS_PER_KM * dist_km,
            capacity_mbps: capacity,
            mss_bytes: 1460.0,
            queue_bdp: DEFAULT_QUEUE_BDP,
        }
    }

    /// The bandwidth-delay product in packets.
    pub fn bdp_packets(&self) -> f64 {
        self.capacity_mbps * 1e6 / 8.0 * (self.rtt_ms / 1e3) / self.mss_bytes
    }

    /// Packets per second at `mbps`.
    pub fn packets_per_sec(&self, mbps: f64) -> f64 {
        mbps * 1e6 / 8.0 / self.mss_bytes
    }

    /// The bottleneck buffer size in bits: `queue_bdp` BDPs.
    pub fn buffer_bits(&self) -> f64 {
        self.queue_bdp * self.capacity_mbps * 1e6 * (self.rtt_ms / 1e3)
    }

    /// The queueing delay in seconds a backlog of `backlog_bits` adds at
    /// the bottleneck: the time the bottleneck needs to drain it.
    pub fn queueing_delay_s(&self, backlog_bits: f64) -> f64 {
        if self.capacity_mbps <= 0.0 {
            0.0
        } else {
            backlog_bits.max(0.0) / (self.capacity_mbps * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::servers::{carrier_pool, default_ue_location, Carrier};
    use fiveg_radio::band::Band;

    fn mmwave_link() -> LinkState {
        LinkState {
            band: Band::N261,
            rsrp_dbm: -70.0,
            sa: false,
        }
    }

    #[test]
    fn local_server_rtt_is_about_6ms() {
        let pool = carrier_pool(Carrier::Verizon);
        let local = pool
            .iter()
            .find(|s| s.name.contains("Minneapolis"))
            .expect("local");
        let p = PathModel::build(
            UeModel::GalaxyS20Ultra,
            &mmwave_link(),
            local,
            default_ue_location(),
            Direction::Downlink,
        );
        assert!(
            (5.0..8.0).contains(&p.rtt_ms),
            "Fig 1: min RTT ≈ 6 ms, got {}",
            p.rtt_ms
        );
    }

    #[test]
    fn rtt_grows_with_distance() {
        let pool = carrier_pool(Carrier::Verizon);
        let ue = default_ue_location();
        let far = pool
            .iter()
            .max_by(|a, b| {
                a.distance_km(ue)
                    .partial_cmp(&b.distance_km(ue))
                    .expect("finite")
            })
            .expect("non-empty");
        let p = PathModel::build(
            UeModel::GalaxyS20Ultra,
            &mmwave_link(),
            far,
            ue,
            Direction::Downlink,
        );
        assert!(
            (30.0..100.0).contains(&p.rtt_ms),
            "coast-to-coast RTT {} ms (Fig 2 shows up to ~100)",
            p.rtt_ms
        );
    }

    #[test]
    fn loss_stays_under_one_percent() {
        // Paper: "the packet loss rate was less than 1%" even at 3 Gbps.
        let loss = BASE_LOSS + LOSS_PER_KM * 2500.0;
        assert!(loss < 0.01);
    }

    #[test]
    fn server_cap_binds_capacity() {
        let server = ServerInfo {
            name: "capped".into(),
            host: fiveg_geo::servers::ServerHost::ThirdParty,
            loc: None,
            distance_override_km: Some(100.0),
            cap_mbps: Some(1000.0),
            path_efficiency: 1.0,
        };
        let p = PathModel::build(
            UeModel::GalaxyS20Ultra,
            &mmwave_link(),
            &server,
            default_ue_location(),
            Direction::Downlink,
        );
        assert_eq!(p.capacity_mbps, 1000.0);
    }

    #[test]
    fn bdp_scales_with_rtt() {
        let p = PathModel {
            rtt_ms: 10.0,
            loss_per_pkt: 0.0,
            capacity_mbps: 1168.0,
            mss_bytes: 1460.0,
            queue_bdp: DEFAULT_QUEUE_BDP,
        };
        // 1168 Mbps × 10 ms = 1.46 MB = 1000 packets.
        assert!((p.bdp_packets() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn full_buffer_queues_for_queue_bdp_rtts() {
        let p = PathModel {
            rtt_ms: 20.0,
            loss_per_pkt: 0.0,
            capacity_mbps: 1000.0,
            mss_bytes: 1460.0,
            queue_bdp: 1.0,
        };
        // A full one-BDP buffer drains in exactly one base RTT.
        let d = p.queueing_delay_s(p.buffer_bits());
        assert!((d - 0.020).abs() < 1e-12, "{d}");
        // Queueing delay is linear in the backlog and never negative.
        assert_eq!(p.queueing_delay_s(0.0), 0.0);
        assert_eq!(p.queueing_delay_s(-5.0), 0.0);
        assert!((p.queueing_delay_s(p.buffer_bits() / 2.0) - 0.010).abs() < 1e-12);
    }
}
