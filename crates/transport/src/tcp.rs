//! Fluid-flow TCP simulation with CUBIC and Reno congestion control.
//!
//! Rather than a packet-level stack, flows are advanced analytically in
//! small time steps: the congestion window follows the control law in real
//! time, loss events arrive as a Poisson process (random path loss plus
//! bottleneck-overflow loss), and delivered throughput is the minimum of the
//! window-limited rate, the send-buffer-limited rate (`tcp_wmem`), and the
//! flow's fair share of the bottleneck. This reproduces the §3 phenomena:
//!
//! * multi-connection tests saturate the radio regardless of distance,
//! * a single connection degrades with RTT (loss recovery epochs cost more,
//!   and longer paths lose more packets),
//! * the default send buffer pins one flow at `buf/RTT`,
//! * even a tuned buffer trails UDP because loss recovery keeps biting.

use crate::path::PathModel;
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::recovery::{self, RecoveryKind};
use fiveg_simcore::{budget, guard, telemetry, RngStream};

/// Congestion-control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcAlgo {
    /// Linux CUBIC (the paper's default).
    Cubic,
    /// Classic Reno (ablation baseline).
    Reno,
    /// BBR: model-based pacing from windowed BtlBw/RTprop filters
    /// (runs on the rate engine, not the fluid window engine).
    Bbr,
    /// NADA (RFC 8698): delay-gradient rate control off the unified
    /// congestion signal (rate engine).
    Nada,
}

impl CcAlgo {
    /// Stable name, for CLI flags and report labels.
    pub fn as_str(self) -> &'static str {
        match self {
            CcAlgo::Cubic => "cubic",
            CcAlgo::Reno => "reno",
            CcAlgo::Bbr => "bbr",
            CcAlgo::Nada => "nada",
        }
    }

    /// Parses an algorithm name.
    pub fn parse(s: &str) -> Option<CcAlgo> {
        match s {
            "cubic" => Some(CcAlgo::Cubic),
            "reno" => Some(CcAlgo::Reno),
            "bbr" => Some(CcAlgo::Bbr),
            "nada" => Some(CcAlgo::Nada),
            _ => None,
        }
    }

    /// True for the controllers that pace a send *rate* (BBR, NADA)
    /// rather than growing a congestion *window* (CUBIC, Reno).
    pub fn is_rate_based(self) -> bool {
        matches!(self, CcAlgo::Bbr | CcAlgo::Nada)
    }
}

/// CUBIC constants (RFC 8312).
const CUBIC_C: f64 = 0.4;
const CUBIC_BETA: f64 = 0.7;
/// Reno multiplicative decrease.
const RENO_BETA: f64 = 0.5;
/// Initial window in packets.
const INIT_CWND: f64 = 10.0;

/// Effective default sender buffer in bytes (Linux `tcp_wmem` default
/// autotuning ceiling as observed end-to-end; Fig 8 "1-TCP Default").
pub const WMEM_DEFAULT_BYTES: f64 = 1.0e6;

/// Tuned sender buffer (Fig 8 "1-TCP Tuned": `tcp_wmem` raised so the
/// buffer is never the bottleneck at these BDPs).
pub const WMEM_TUNED_BYTES: f64 = 16.0e6;

/// Configuration of a TCP simulation run.
#[derive(Debug, Clone, Copy)]
pub struct TcpSimConfig {
    /// Number of parallel connections.
    pub connections: usize,
    /// Congestion control.
    pub algo: CcAlgo,
    /// Sender buffer cap in bytes (per connection).
    pub wmem_bytes: f64,
    /// Simulation step in seconds.
    pub dt_s: f64,
}

impl TcpSimConfig {
    /// A single default-buffer CUBIC connection.
    pub fn single_default() -> Self {
        TcpSimConfig {
            connections: 1,
            algo: CcAlgo::Cubic,
            wmem_bytes: WMEM_DEFAULT_BYTES,
            dt_s: 0.01,
        }
    }

    /// A single tuned-buffer CUBIC connection.
    pub fn single_tuned() -> Self {
        TcpSimConfig {
            wmem_bytes: WMEM_TUNED_BYTES,
            ..Self::single_default()
        }
    }

    /// `n` tuned-buffer CUBIC connections (Speedtest multi-connection mode
    /// uses 15–25; Fig 8's "TCP-8" uses 8).
    pub fn multi(n: usize) -> Self {
        TcpSimConfig {
            connections: n,
            ..Self::single_tuned()
        }
    }
}

/// One flow's congestion state.
#[derive(Debug, Clone)]
struct Flow {
    cwnd_pkts: f64,
    ssthresh_pkts: f64,
    in_slow_start: bool,
    /// CUBIC: window before the last reduction.
    w_max_pkts: f64,
    /// CUBIC: seconds since the last loss (epoch time).
    epoch_s: f64,
}

impl Flow {
    fn new() -> Self {
        Flow {
            cwnd_pkts: INIT_CWND,
            ssthresh_pkts: f64::INFINITY,
            in_slow_start: true,
            w_max_pkts: INIT_CWND,
            epoch_s: 0.0,
        }
    }

    /// Advances the window by `dt` seconds without loss.
    fn grow(&mut self, dt_s: f64, rtt_s: f64, algo: CcAlgo) {
        if self.in_slow_start {
            // Double per RTT.
            self.cwnd_pkts *= 2f64.powf(dt_s / rtt_s);
            if self.cwnd_pkts >= self.ssthresh_pkts {
                self.cwnd_pkts = self.ssthresh_pkts;
                self.in_slow_start = false;
                self.w_max_pkts = self.cwnd_pkts;
                self.epoch_s = 0.0;
            }
            return;
        }
        self.epoch_s += dt_s;
        match algo {
            CcAlgo::Bbr | CcAlgo::Nada => {
                unreachable!("rate-based controllers run on the rate engine")
            }
            CcAlgo::Cubic => {
                let k = (self.w_max_pkts * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
                let w_cubic = CUBIC_C * (self.epoch_s - k).powi(3) + self.w_max_pkts;
                // TCP-friendly region (RFC 8312 §4.2).
                let w_tcp = self.w_max_pkts * CUBIC_BETA
                    + 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) * (self.epoch_s / rtt_s);
                self.cwnd_pkts = w_cubic.max(w_tcp).max(1.0);
            }
            CcAlgo::Reno => {
                // One packet per RTT.
                self.cwnd_pkts += dt_s / rtt_s;
            }
        }
    }

    /// Applies one retransmission timeout (RFC 6298 shape): collapse to one
    /// packet and restart slow start toward half the pre-RTO window.
    fn on_rto(&mut self) {
        self.ssthresh_pkts = (self.cwnd_pkts / 2.0).max(2.0);
        self.cwnd_pkts = 1.0;
        self.in_slow_start = true;
        self.w_max_pkts = self.ssthresh_pkts;
        self.epoch_s = 0.0;
    }

    /// Applies one loss event.
    fn on_loss(&mut self, algo: CcAlgo) {
        let beta = match algo {
            CcAlgo::Cubic => CUBIC_BETA,
            CcAlgo::Reno => RENO_BETA,
            CcAlgo::Bbr | CcAlgo::Nada => {
                unreachable!("rate-based controllers run on the rate engine")
            }
        };
        // RFC 8312 §4.6 fast convergence: a loss arriving while still
        // below the previous saturation point means another flow is taking
        // bandwidth — release the epoch target further so the flows
        // converge instead of chasing a stale w_max.
        self.w_max_pkts = if algo == CcAlgo::Cubic && self.cwnd_pkts < self.w_max_pkts {
            self.cwnd_pkts * (1.0 + beta) / 2.0
        } else {
            self.cwnd_pkts
        };
        self.cwnd_pkts = (self.cwnd_pkts * beta).max(1.0);
        self.ssthresh_pkts = self.cwnd_pkts;
        self.in_slow_start = false;
        self.epoch_s = 0.0;
    }
}

/// Result of a TCP simulation run.
#[derive(Debug, Clone)]
pub struct TcpRunResult {
    /// Mean goodput over the measurement window, Mbps.
    pub mean_mbps: f64,
    /// Total loss events across flows.
    pub loss_events: u64,
    /// Per-second goodput samples, Mbps.
    pub per_second_mbps: Vec<f64>,
}

/// A multi-flow TCP simulation over one path.
pub struct TcpSim {
    path: PathModel,
    cfg: TcpSimConfig,
    flows: Vec<Flow>,
    rng: RngStream,
}

impl TcpSim {
    /// Creates a simulation of `cfg.connections` flows over `path`.
    ///
    /// # Panics
    /// Panics if the configuration has zero connections or a non-positive
    /// step.
    pub fn new(path: PathModel, cfg: TcpSimConfig, rng: RngStream) -> Self {
        assert!(cfg.connections > 0, "need at least one connection");
        assert!(cfg.dt_s > 0.0, "step must be positive");
        TcpSim {
            path,
            cfg,
            flows: (0..cfg.connections).map(|_| Flow::new()).collect(),
            rng,
        }
    }

    /// Instantaneous aggregate goodput given current windows, in Mbps, and
    /// the per-flow demands (window- and buffer-limited) at effective RTT
    /// `rtt_s`.
    fn demands_mbps(&self, rtt_s: f64) -> Vec<f64> {
        let buf_limit = self.cfg.wmem_bytes * 8.0 / 1e6 / rtt_s;
        self.flows
            .iter()
            .map(|f| {
                let wnd_mbps = f.cwnd_pkts * self.path.mss_bytes * 8.0 / 1e6 / rtt_s;
                wnd_mbps.min(buf_limit)
            })
            .collect()
    }

    /// Runs for `duration_s`, measuring goodput over the whole run.
    ///
    /// Under an ambient fault plane, per-step effective path parameters
    /// honour three fault kinds at the step's local time: loss bursts
    /// multiply the per-packet loss rate by the window's magnitude, RTT
    /// spikes multiply the path RTT by `1 + magnitude`, and stall windows
    /// freeze delivery while the retransmission machinery reacts: RTO
    /// timers fire with exponential backoff, collapsing every window to one
    /// packet, and after repeated backoffs the connections are reset so the
    /// post-stall recovery is a fresh slow-start ramp (collapse-and-ramp,
    /// not a resumed plateau). With no plane installed the run is
    /// bit-identical to a plane-free build.
    pub fn run(&mut self, duration_s: f64) -> TcpRunResult {
        if self.cfg.algo.is_rate_based() {
            // BBR and NADA pace a rate against the explicit bottleneck
            // queue; the fluid window engine below stays byte-identical
            // for CUBIC/Reno.
            return crate::rate::run_rate(&self.path, &self.cfg, &mut self.rng, duration_s);
        }
        let base_rtt_s = self.path.rtt_ms / 1e3;
        let dt = self.cfg.dt_s;
        let mut t = 0.0;
        let mut delivered_mb = 0.0;
        let mut loss_events = 0u64;
        let mut per_second = Vec::new();
        let mut second_acc = 0.0;
        let mut next_second = 1.0;
        // Wall of the per-second window currently accumulating (for the
        // final partial-second flush below).
        let mut second_start = 0.0;
        // RTO state across a stall window (fault plane only).
        let mut stall_since: Option<f64> = None;
        let mut rto_s = 0.0;
        let mut next_rto_at = 0.0;
        let mut backoffs = 0u32;
        let mut did_reset = false;

        telemetry::clock(0.0);
        let _run_span = telemetry::span("transport/run");
        while t < duration_s {
            budget::charge(1);
            telemetry::clock(t);
            let (rtt_s, loss_per_pkt, stalled) = if faults::enabled() {
                let rtt_mult =
                    faults::magnitude(FaultKind::RttSpike, t).map_or(1.0, |m| 1.0 + m.max(0.0));
                let loss_mult =
                    faults::magnitude(FaultKind::LossBurst, t).map_or(1.0, |m| m.max(1.0));
                (
                    base_rtt_s * rtt_mult,
                    self.path.loss_per_pkt * loss_mult,
                    faults::is_active(FaultKind::StallWindow, t),
                )
            } else {
                (base_rtt_s, self.path.loss_per_pkt, false)
            };
            if stalled {
                let since = match stall_since {
                    Some(s) => s,
                    None => {
                        // Dead air begins: arm the retransmission timer at
                        // the RFC 6298 floor.
                        rto_s = (2.0 * base_rtt_s).max(1.0);
                        next_rto_at = t + rto_s;
                        backoffs = 0;
                        did_reset = false;
                        stall_since = Some(t);
                        t
                    }
                };
                if t >= next_rto_at {
                    backoffs += 1;
                    telemetry::count("transport/rto", 1);
                    telemetry::observe("transport/rto_backoff_s", rto_s);
                    for f in self.flows.iter_mut() {
                        f.on_rto();
                    }
                    recovery::record(RecoveryKind::TcpRto, t, rto_s, t - since, || {
                        format!("backoff #{backoffs}, windows collapsed")
                    });
                    if backoffs >= 5 && !did_reset {
                        // The retry budget is spent: tear the connections
                        // down and re-establish, starting over from the
                        // initial window.
                        did_reset = true;
                        telemetry::count("transport/conn_reset", 1);
                        for f in self.flows.iter_mut() {
                            *f = Flow::new();
                        }
                        recovery::record(RecoveryKind::TcpConnReset, t, rto_s, t - since, || {
                            format!("reset after {backoffs} backoffs")
                        });
                    }
                    rto_s *= 2.0;
                    next_rto_at = t + rto_s;
                    // The backoff sequence only ever doubles from the RFC
                    // 6298 floor; a shrinking or non-finite RTO would let a
                    // stall window fire timers unboundedly often.
                    guard::check(
                        "transport",
                        "rto-bounds",
                        rto_s.is_finite() && rto_s >= (2.0 * base_rtt_s).max(1.0),
                        t,
                        || format!("RTO {rto_s}s below the floor after backoff #{backoffs}"),
                    );
                }
                t += dt;
                if t >= next_second {
                    per_second.push(second_acc);
                    second_acc = 0.0;
                    next_second += 1.0;
                    second_start = t;
                }
                continue;
            }
            stall_since = None;
            let demands = self.demands_mbps(rtt_s);
            let total: f64 = demands.iter().sum();
            // Fair sharing at the bottleneck: proportional scale-down.
            let scale = if total > self.path.capacity_mbps {
                self.path.capacity_mbps / total
            } else {
                1.0
            };
            let over = total > self.path.capacity_mbps * 1.02;
            // The sender can never have more unacked data than its send
            // buffer holds: cwnd is hard-capped at wmem/MSS.
            let cwnd_cap = self.cfg.wmem_bytes / self.path.mss_bytes;
            for (i, f) in self.flows.iter_mut().enumerate() {
                let thr = demands[i] * scale;
                delivered_mb += thr * dt;
                second_acc += thr * dt;
                // Random path loss: Poisson over delivered packets.
                let pkts = self.path.packets_per_sec(thr) * dt;
                let p_loss = 1.0 - (-pkts * loss_per_pkt).exp();
                // Bottleneck overflow: flows pushing beyond their share get
                // cut with a rate proportional to the overload.
                let p_overflow = if over {
                    (1.0 - scale).min(0.5) * dt * 8.0
                } else {
                    0.0
                };
                if self.rng.chance(step_loss_probability(p_loss, p_overflow)) {
                    telemetry::count("transport/loss", 1);
                    telemetry::observe("transport/cwnd_pkts", f.cwnd_pkts);
                    telemetry::series("transport/cwnd_pkts_t", t, f.cwnd_pkts);
                    f.on_loss(self.cfg.algo);
                    loss_events += 1;
                    // Under a loss-burst window the repair is a fast
                    // retransmit (the decrease above) — worth surfacing as a
                    // recovery action; recording changes no simulation state.
                    if faults::is_active(FaultKind::LossBurst, t) {
                        recovery::record(RecoveryKind::TcpFastRetransmit, t, rtt_s, 0.0, || {
                            format!("flow {i}: multiplicative decrease")
                        });
                    }
                } else {
                    f.grow(dt, rtt_s, self.cfg.algo);
                }
                if f.cwnd_pkts >= cwnd_cap {
                    f.cwnd_pkts = cwnd_cap;
                    if f.in_slow_start || f.w_max_pkts < cwnd_cap {
                        // Hit the buffer ceiling from below: treat it as the
                        // new saturation point.
                        f.in_slow_start = false;
                        f.w_max_pkts = cwnd_cap;
                        f.epoch_s = 0.0;
                    }
                }
                guard::in_range(
                    "transport",
                    "cwnd-bounds",
                    f.cwnd_pkts,
                    1.0,
                    cwnd_cap,
                    1e-9,
                    t,
                );
            }
            t += dt;
            if t >= next_second {
                per_second.push(second_acc);
                second_acc = 0.0;
                next_second += 1.0;
                second_start = t;
            }
        }

        if guard::enabled() {
            // Conservation: the per-second ledger re-partitions exactly the
            // megabits the running total delivered (modulo float
            // re-association across partial sums).
            let ledger: f64 = per_second.iter().sum::<f64>() + second_acc;
            guard::check(
                "transport",
                "bytes-conserved",
                (ledger - delivered_mb).abs() <= 1e-6 * delivered_mb.abs() + 1e-9,
                duration_s,
                || format!("per-second ledger {ledger} vs delivered {delivered_mb}"),
            );
            guard::non_negative("transport", "goodput", delivered_mb, 0.0, duration_s);
        }
        // Flush the final partial second: when `duration_s` is not an
        // integer number of seconds the tail accumulator still holds real
        // deliveries, and dropping it biased the per-second goodput CDFs.
        // The sample is normalized by its actual window so it is a rate
        // comparable to the full-second samples. (For integer durations
        // the accumulator is exactly zero here and nothing changes.)
        let tail_s = t - second_start;
        if second_acc > 0.0 && tail_s > 0.0 {
            per_second.push(second_acc / tail_s);
        }
        telemetry::gauge("transport/mean_mbps", delivered_mb / duration_s);
        TcpRunResult {
            mean_mbps: delivered_mb / duration_s,
            loss_events,
            per_second_mbps: per_second,
        }
    }
}

impl TcpSim {
    /// Test/debug helper: the current cwnd (packets) of flow `i`.
    pub fn debug_cwnd(&self, i: usize) -> f64 {
        self.flows[i].cwnd_pkts
    }
}

/// The per-step loss probability fed to the RNG: random path loss plus
/// bottleneck-overflow loss, clamped into `[0, 1]`. The two components
/// are probabilities of distinct events; their sum can exceed 1 at large
/// steps (`p_overflow` scales with `dt`), which would silently degenerate
/// into loss-every-step.
pub(crate) fn step_loss_probability(p_loss: f64, p_overflow: f64) -> f64 {
    (p_loss + p_overflow).clamp(0.0, 1.0)
}

/// Convenience: run one Speedtest-style 15 s transfer and report the mean
/// goodput of the steady half (skipping slow start's first seconds).
pub fn measure_throughput(path: PathModel, cfg: TcpSimConfig, seed: u64) -> f64 {
    let mut sim = TcpSim::new(path, cfg, RngStream::new(seed, "tcp"));
    let res = sim.run(15.0);
    // Speedtest reports exclude the ramp; average seconds 5..15.
    let steady: Vec<f64> = res.per_second_mbps.iter().skip(5).copied().collect();
    if steady.is_empty() {
        res.mean_mbps
    } else {
        steady.iter().sum::<f64>() / steady.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(rtt_ms: f64, capacity: f64, dist_km: f64) -> PathModel {
        PathModel {
            rtt_ms,
            loss_per_pkt: crate::path::BASE_LOSS + crate::path::LOSS_PER_KM * dist_km,
            capacity_mbps: capacity,
            mss_bytes: 1460.0,
            queue_bdp: crate::path::DEFAULT_QUEUE_BDP,
        }
    }

    #[test]
    fn multi_connection_saturates_near_and_far() {
        for (rtt, km) in [(6.0, 3.0), (55.0, 2500.0)] {
            let thr = measure_throughput(path(rtt, 3400.0, km), TcpSimConfig::multi(20), 1);
            assert!(
                thr > 0.85 * 3400.0,
                "20 conns must saturate at rtt={rtt}: {thr}"
            );
        }
    }

    #[test]
    fn single_connection_decays_with_distance() {
        let near = measure_throughput(path(6.0, 3400.0, 3.0), TcpSimConfig::single_tuned(), 2);
        let far = measure_throughput(path(55.0, 3400.0, 2500.0), TcpSimConfig::single_tuned(), 2);
        assert!(near > 2.0 * far, "near {near} vs far {far} (Fig 3 shape)");
        assert!(
            near > 2000.0,
            "near-server single conn approaches capacity: {near}"
        );
    }

    #[test]
    fn default_wmem_pins_throughput() {
        // Azure nearest region: 374 km ≈ 14 ms RTT. Default buffer must pin
        // a single flow near 1 MB × 8 / 14 ms ≈ 570 Mbps (Fig 8 ≤ 500 Mbps
        // at the farther regions).
        let thr = measure_throughput(path(14.0, 2200.0, 374.0), TcpSimConfig::single_default(), 3);
        assert!((300.0..650.0).contains(&thr), "default 1-TCP: {thr}");
        let far = measure_throughput(
            path(40.0, 2200.0, 2044.0),
            TcpSimConfig::single_default(),
            3,
        );
        assert!(far < 500.0, "far default 1-TCP ≤ 500 Mbps: {far}");
    }

    #[test]
    fn tuned_wmem_multiplies_default() {
        // Fig 8: tuning tcp_wmem lifts single-conn throughput 2.1–3×.
        for (rtt, km, seed) in [(14.0, 374.0, 4), (21.0, 1444.0, 5)] {
            let default =
                measure_throughput(path(rtt, 2200.0, km), TcpSimConfig::single_default(), seed);
            let tuned =
                measure_throughput(path(rtt, 2200.0, km), TcpSimConfig::single_tuned(), seed);
            let ratio = tuned / default;
            assert!(
                (1.8..4.5).contains(&ratio),
                "tuned/default at rtt={rtt}: {ratio} ({tuned}/{default})"
            );
        }
    }

    #[test]
    fn tuned_single_still_trails_capacity() {
        // Fig 8: tuned 1-TCP falls short of UDP by a large margin on
        // distant paths.
        let thr = measure_throughput(path(30.0, 2200.0, 1539.0), TcpSimConfig::single_tuned(), 6);
        assert!(thr < 0.85 * 2200.0, "tuned single conn gap vs UDP: {thr}");
    }

    #[test]
    fn cubic_beats_reno_on_big_bdp() {
        let p = path(40.0, 2200.0, 1500.0);
        let cubic = measure_throughput(p, TcpSimConfig::single_tuned(), 7);
        let reno = measure_throughput(
            p,
            TcpSimConfig {
                algo: CcAlgo::Reno,
                ..TcpSimConfig::single_tuned()
            },
            7,
        );
        assert!(cubic > reno, "cubic {cubic} vs reno {reno}");
    }

    #[test]
    fn loss_events_stay_plausible() {
        let mut sim = TcpSim::new(
            path(20.0, 2000.0, 1000.0),
            TcpSimConfig::single_tuned(),
            RngStream::new(8, "tcp"),
        );
        let res = sim.run(15.0);
        assert!(res.loss_events > 0, "some losses over 15 s at 2 Gbps");
        assert!(
            res.loss_events < 500,
            "but not a storm: {}",
            res.loss_events
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let p = path(20.0, 2000.0, 1000.0);
        let a = measure_throughput(p, TcpSimConfig::multi(8), 9);
        let b = measure_throughput(p, TcpSimConfig::multi(8), 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn rejects_zero_connections() {
        let cfg = TcpSimConfig {
            connections: 0,
            ..TcpSimConfig::single_default()
        };
        TcpSim::new(path(10.0, 100.0, 10.0), cfg, RngStream::new(1, "t"));
    }

    #[test]
    fn fast_convergence_releases_wmax_below_previous_peak() {
        // RFC 8312 §4.6: a loss arriving while cwnd is still below the
        // previous w_max must set the new w_max to cwnd·(1+β)/2, not cwnd.
        // (Failed before the fix: w_max was always set to cwnd.)
        let mut flow = Flow::new();
        flow.in_slow_start = false;
        flow.w_max_pkts = 100.0;
        flow.cwnd_pkts = 60.0;
        flow.on_loss(CcAlgo::Cubic);
        let expected = 60.0 * (1.0 + CUBIC_BETA) / 2.0;
        assert!(
            (flow.w_max_pkts - expected).abs() < 1e-9,
            "fast convergence: w_max {} != {expected}",
            flow.w_max_pkts
        );
        // Above the previous peak the classic update still applies.
        let mut flow = Flow::new();
        flow.in_slow_start = false;
        flow.w_max_pkts = 50.0;
        flow.cwnd_pkts = 80.0;
        flow.on_loss(CcAlgo::Cubic);
        assert_eq!(flow.w_max_pkts, 80.0);
        // Reno keeps its memoryless halving either way.
        let mut flow = Flow::new();
        flow.in_slow_start = false;
        flow.w_max_pkts = 100.0;
        flow.cwnd_pkts = 60.0;
        flow.on_loss(CcAlgo::Reno);
        assert_eq!(flow.w_max_pkts, 60.0);
    }

    #[test]
    fn step_loss_probability_is_clamped_to_unit_interval() {
        // A large dt can push p_loss + p_overflow past 1 (the overflow
        // term scales with dt); the combined probability must stay a
        // probability. (Failed before the fix: the raw sum was 2.9.)
        assert_eq!(step_loss_probability(0.9, 2.0), 1.0);
        assert_eq!(step_loss_probability(0.0, 0.0), 0.0);
        // In-range sums pass through untouched (bit-identical artifacts).
        let p = step_loss_probability(1e-3, 2e-2);
        assert_eq!(p, 1e-3 + 2e-2);
    }

    #[test]
    fn partial_final_second_is_flushed() {
        // A 3.5 s run must yield 4 per-second samples, the last one a
        // rate normalized over its 0.5 s window. (Failed before the fix:
        // the tail accumulator was dropped, so only 3 samples came back.)
        let mut sim = TcpSim::new(
            path(20.0, 1000.0, 500.0),
            TcpSimConfig::single_tuned(),
            RngStream::new(11, "tcp"),
        );
        let res = sim.run(3.5);
        assert_eq!(
            res.per_second_mbps.len(),
            4,
            "tail second missing: {:?}",
            res.per_second_mbps
        );
        let tail = res.per_second_mbps[3];
        let third = res.per_second_mbps[2];
        assert!(
            tail > 0.4 * third && tail < 2.5 * third,
            "tail sample must be a normalized rate, not a half-window sum: \
             tail {tail} vs previous {third}"
        );
        // Integer durations keep their exact shape (no spurious sample).
        let mut sim = TcpSim::new(
            path(20.0, 1000.0, 500.0),
            TcpSimConfig::single_tuned(),
            RngStream::new(11, "tcp"),
        );
        assert_eq!(sim.run(3.0).per_second_mbps.len(), 3);
    }

    #[test]
    fn rate_based_algos_run_on_the_rate_engine() {
        for algo in [CcAlgo::Bbr, CcAlgo::Nada] {
            let cfg = TcpSimConfig {
                algo,
                ..TcpSimConfig::single_tuned()
            };
            let p = path(20.0, 2000.0, 800.0);
            let a = measure_throughput(p, cfg, 12);
            let b = measure_throughput(p, cfg, 12);
            assert_eq!(a, b, "{} must be deterministic under seed", algo.as_str());
            assert!(
                a > 100.0 && a <= 2000.0,
                "{} goodput plausible: {a}",
                algo.as_str()
            );
        }
    }

    #[test]
    fn cc_algo_names_round_trip() {
        for algo in [CcAlgo::Cubic, CcAlgo::Reno, CcAlgo::Bbr, CcAlgo::Nada] {
            assert_eq!(CcAlgo::parse(algo.as_str()), Some(algo));
        }
        assert_eq!(CcAlgo::parse("vegas"), None);
        assert!(CcAlgo::Bbr.is_rate_based() && CcAlgo::Nada.is_rate_based());
        assert!(!CcAlgo::Cubic.is_rate_based() && !CcAlgo::Reno.is_rate_based());
    }
}
