//! The rate-based engine: BBR and NADA pace a send *rate* against an
//! explicit bottleneck queue instead of growing a congestion window.
//!
//! The fluid window engine in `tcp.rs` models the bottleneck as fair-share
//! scaling plus overflow *loss*; the rate engine makes the queue explicit,
//! because queueing *delay* is the very signal the rate-based controllers
//! feed on: the backlog integrates `arrivals − departures`, adds
//! `PathModel::queueing_delay_s` to the effective RTT, and spills into
//! loss only past `PathModel::buffer_bits()`. Both engines share the
//! fault-plane contract (RTT spikes, loss bursts, stall windows with RFC
//! 6298 RTO backoff and connection reset), the per-second goodput ledger
//! with the partial-tail flush, and the conservation guards, so results
//! are comparable column-to-column in `ablation-cc`.

use crate::bbr::Bbr;
use crate::nada::{self, Nada};
use crate::path::PathModel;
use crate::tcp::{step_loss_probability, TcpRunResult, TcpSimConfig};
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::recovery::{self, RecoveryKind};
use fiveg_simcore::{budget, guard, telemetry, RngStream};

/// Initial window equivalent (packets) used to seed the starting rate,
/// mirroring the window engine's `INIT_CWND`.
const INIT_PKTS: f64 = 10.0;

/// One flow's rate controller.
enum Controller {
    Bbr(Bbr),
    Nada(Nada),
}

impl Controller {
    fn new(cfg: &TcpSimConfig, init_rate_mbps: f64) -> Controller {
        match cfg.algo {
            crate::CcAlgo::Bbr => Controller::Bbr(Bbr::new(init_rate_mbps)),
            crate::CcAlgo::Nada => Controller::Nada(Nada::new(init_rate_mbps)),
            _ => unreachable!("window-based controllers run on the fluid engine"),
        }
    }

    /// The paced send rate at effective RTT `rtt_s`, capped by the send
    /// buffer exactly like the window engine caps cwnd at `wmem`.
    fn send_rate_mbps(&self, cfg: &TcpSimConfig, path: &PathModel, rtt_s: f64) -> f64 {
        let buf_limit = cfg.wmem_bytes * 8.0 / 1e6 / rtt_s;
        let rate = match self {
            Controller::Bbr(b) => b
                .pacing_rate_mbps()
                .min(b.cwnd_rate_cap_mbps(path.mss_bytes, rtt_s)),
            Controller::Nada(n) => n.rate_mbps(),
        };
        rate.min(buf_limit)
    }

    /// One feedback sample: delivered rate, effective RTT, queueing delay
    /// and the deterministic per-step loss probability.
    fn on_sample(&mut self, t: f64, delivered_mbps: f64, rtt_s: f64, qdelay_s: f64, p_loss: f64) {
        match self {
            Controller::Bbr(b) => b.on_sample(t, delivered_mbps, rtt_s, qdelay_s),
            Controller::Nada(n) => {
                n.on_loss_ratio_sample(p_loss);
                n.on_feedback(t, qdelay_s * 1e3, rtt_s * 1e3);
            }
        }
    }

    fn on_rto(&mut self, t: f64) {
        match self {
            Controller::Bbr(b) => b.on_rto(t),
            // NADA has no timeout machinery of its own: collapse to the
            // floor rate and let the ramp-up regime rebuild.
            Controller::Nada(n) => *n = Nada::new(nada::RMIN_MBPS),
        }
    }
}

/// Runs `cfg.connections` rate-based flows over `path` for `duration_s`.
/// Same contract as [`crate::TcpSim::run`], which dispatches here for
/// `CcAlgo::{Bbr, Nada}`.
pub(crate) fn run_rate(
    path: &PathModel,
    cfg: &TcpSimConfig,
    rng: &mut RngStream,
    duration_s: f64,
) -> TcpRunResult {
    let base_rtt_s = path.rtt_ms / 1e3;
    let dt = cfg.dt_s;
    let init_rate = INIT_PKTS * path.mss_bytes * 8.0 / 1e6 / base_rtt_s;
    let mut flows: Vec<Controller> = (0..cfg.connections)
        .map(|_| Controller::new(cfg, init_rate))
        .collect();

    let mut t = 0.0;
    let mut delivered_mb = 0.0;
    let mut loss_events = 0u64;
    let mut per_second = Vec::new();
    let mut second_acc = 0.0;
    let mut next_second = 1.0;
    let mut second_start = 0.0;
    // The explicit bottleneck queue, bits.
    let mut backlog_bits = 0.0_f64;
    // RTO state across a stall window (fault plane only).
    let mut stall_since: Option<f64> = None;
    let mut rto_s = 0.0;
    let mut next_rto_at = 0.0;
    let mut backoffs = 0u32;
    let mut did_reset = false;

    telemetry::clock(0.0);
    let _run_span = telemetry::span("transport/run");
    while t < duration_s {
        budget::charge(1);
        telemetry::clock(t);
        let (rtt_mult, loss_per_pkt, stalled) = if faults::enabled() {
            (
                faults::magnitude(FaultKind::RttSpike, t).map_or(1.0, |m| 1.0 + m.max(0.0)),
                path.loss_per_pkt
                    * faults::magnitude(FaultKind::LossBurst, t).map_or(1.0, |m| m.max(1.0)),
                faults::is_active(FaultKind::StallWindow, t),
            )
        } else {
            (1.0, path.loss_per_pkt, false)
        };
        if stalled {
            let since = match stall_since {
                Some(s) => s,
                None => {
                    rto_s = (2.0 * base_rtt_s).max(1.0);
                    next_rto_at = t + rto_s;
                    backoffs = 0;
                    did_reset = false;
                    stall_since = Some(t);
                    t
                }
            };
            if t >= next_rto_at {
                backoffs += 1;
                telemetry::count("transport/rto", 1);
                telemetry::observe("transport/rto_backoff_s", rto_s);
                for f in flows.iter_mut() {
                    f.on_rto(t);
                }
                recovery::record(RecoveryKind::TcpRto, t, rto_s, t - since, || {
                    format!("backoff #{backoffs}, pacing collapsed")
                });
                if backoffs >= 5 && !did_reset {
                    did_reset = true;
                    telemetry::count("transport/conn_reset", 1);
                    for f in flows.iter_mut() {
                        *f = Controller::new(cfg, init_rate);
                    }
                    recovery::record(RecoveryKind::TcpConnReset, t, rto_s, t - since, || {
                        format!("reset after {backoffs} backoffs")
                    });
                }
                rto_s *= 2.0;
                next_rto_at = t + rto_s;
                guard::check(
                    "transport",
                    "rto-bounds",
                    rto_s.is_finite() && rto_s >= (2.0 * base_rtt_s).max(1.0),
                    t,
                    || format!("RTO {rto_s}s below the floor after backoff #{backoffs}"),
                );
            }
            t += dt;
            if t >= next_second {
                per_second.push(second_acc);
                second_acc = 0.0;
                next_second += 1.0;
                second_start = t;
            }
            continue;
        }
        stall_since = None;

        // Queueing delay from the backlog at the step's start feeds the
        // effective RTT the controllers see.
        let qdelay_s = path.queueing_delay_s(backlog_bits);
        guard::non_negative("transport", "queue-delay-nonneg", qdelay_s, 0.0, t);
        let rtt_s = base_rtt_s * rtt_mult + qdelay_s;

        let sends: Vec<f64> = flows
            .iter()
            .map(|f| f.send_rate_mbps(cfg, path, rtt_s))
            .collect();
        let arrival_mbps: f64 = sends.iter().sum();

        // Queue integration: arrivals in, at most one capacity·dt out,
        // spill past the buffer becomes overflow loss.
        let inflow_bits = arrival_mbps * 1e6 * dt;
        backlog_bits += inflow_bits;
        let depart_bits = backlog_bits.min(path.capacity_mbps * 1e6 * dt);
        backlog_bits -= depart_bits;
        let overflow_frac = {
            let spill = backlog_bits - path.buffer_bits();
            if spill > 0.0 && inflow_bits > 0.0 {
                backlog_bits = path.buffer_bits();
                (spill / inflow_bits).min(1.0)
            } else {
                0.0
            }
        };
        delivered_mb += depart_bits / 1e6;
        second_acc += depart_bits / 1e6;

        let flow_count = flows.len().max(1) as f64;
        for (i, f) in flows.iter_mut().enumerate() {
            // Each flow delivers its share of what the bottleneck drained.
            let share = if arrival_mbps > 0.0 {
                sends[i] / arrival_mbps
            } else {
                1.0 / flow_count
            };
            let thr = share * depart_bits / 1e6 / dt;
            let pkts = path.packets_per_sec(thr) * dt;
            let p_rand = 1.0 - (-pkts * loss_per_pkt).exp();
            let p_step = step_loss_probability(p_rand, overflow_frac);
            if rng.chance(p_step) {
                telemetry::count("transport/loss", 1);
                loss_events += 1;
                if faults::is_active(FaultKind::LossBurst, t) {
                    recovery::record(RecoveryKind::TcpFastRetransmit, t, rtt_s, 0.0, || {
                        format!("flow {i}: rate-based repair, no window collapse")
                    });
                }
            }
            // The controllers consume the deterministic per-step loss
            // probability (fluid model), not the RNG draw: BBR ignores it
            // by design, NADA folds it into the composite signal.
            f.on_sample(t, thr, rtt_s, qdelay_s, p_step);
        }

        t += dt;
        if t >= next_second {
            per_second.push(second_acc);
            second_acc = 0.0;
            next_second += 1.0;
            second_start = t;
            telemetry::observe("transport/queue_delay_s", qdelay_s);
            telemetry::series("transport/rate_mbps_t", t, arrival_mbps);
        }
    }

    if guard::enabled() {
        let ledger: f64 = per_second.iter().sum::<f64>() + second_acc;
        guard::check(
            "transport",
            "bytes-conserved",
            (ledger - delivered_mb).abs() <= 1e-6 * delivered_mb.abs() + 1e-9,
            duration_s,
            || format!("per-second ledger {ledger} vs delivered {delivered_mb}"),
        );
        guard::non_negative("transport", "goodput", delivered_mb, 0.0, duration_s);
    }
    // Same partial-tail flush as the window engine: the last accumulator
    // is a normalized rate over its actual window.
    let tail_s = t - second_start;
    if second_acc > 0.0 && tail_s > 0.0 {
        per_second.push(second_acc / tail_s);
    }

    match &flows[0] {
        Controller::Bbr(b) => {
            telemetry::gauge("transport/bbr/btlbw_mbps", b.btlbw_mbps());
            telemetry::gauge("transport/bbr/rtprop_s", b.rtprop_s(base_rtt_s));
        }
        Controller::Nada(n) => {
            telemetry::gauge("transport/nada/rate_mbps", n.rate_mbps());
        }
    }
    telemetry::gauge("transport/mean_mbps", delivered_mb / duration_s);
    TcpRunResult {
        mean_mbps: delivered_mb / duration_s,
        loss_events,
        per_second_mbps: per_second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::measure_throughput;
    use crate::CcAlgo;

    fn path(rtt_ms: f64, capacity: f64, dist_km: f64) -> PathModel {
        PathModel {
            rtt_ms,
            loss_per_pkt: crate::path::BASE_LOSS + crate::path::LOSS_PER_KM * dist_km,
            capacity_mbps: capacity,
            mss_bytes: 1460.0,
            queue_bdp: crate::path::DEFAULT_QUEUE_BDP,
        }
    }

    fn cfg(algo: CcAlgo) -> TcpSimConfig {
        TcpSimConfig {
            algo,
            ..TcpSimConfig::single_tuned()
        }
    }

    #[test]
    fn bbr_fills_a_clean_pipe() {
        let thr = measure_throughput(path(20.0, 2000.0, 800.0), cfg(CcAlgo::Bbr), 1);
        assert!(thr > 0.7 * 2000.0, "BBR steady state near capacity: {thr}");
    }

    #[test]
    fn bbr_shrugs_off_random_long_haul_loss() {
        // The lossy long-haul path of ablation-cc row 50 ms / 2500 km:
        // CUBIC's multiplicative decreases cost it dearly here; BBR's
        // model-based pacing must hold materially more goodput.
        let p = path(50.0, 3400.0, 2500.0);
        let bbr = measure_throughput(p, cfg(CcAlgo::Bbr), 2);
        let cubic = measure_throughput(p, cfg(CcAlgo::Cubic), 2);
        assert!(
            bbr >= cubic,
            "BBR {bbr} must not trail CUBIC {cubic} on the lossy path"
        );
    }

    #[test]
    fn nada_converges_inside_its_bounds() {
        let thr = measure_throughput(path(20.0, 2000.0, 800.0), cfg(CcAlgo::Nada), 3);
        assert!(
            thr > 100.0 && thr <= 2000.0,
            "NADA goodput within path limits: {thr}"
        );
    }

    #[test]
    fn queue_never_exceeds_the_buffer() {
        // A tiny capacity forces sustained pressure on the buffer; the
        // backlog must stay pinned at buffer_bits (checked indirectly:
        // the delivered rate cannot exceed capacity). NADA probes the
        // queue until the delay signal bites, so overflow loss must
        // actually occur along the way.
        let p = path(20.0, 50.0, 100.0);
        let mut rng = RngStream::new(4, "tcp");
        let res = run_rate(&p, &cfg(CcAlgo::Nada), &mut rng, 5.0);
        assert!(
            res.mean_mbps <= 50.0 * 1.001,
            "delivery can never beat capacity: {}",
            res.mean_mbps
        );
        assert!(res.loss_events > 0, "sustained overflow must drop packets");
    }

    #[test]
    fn multi_flow_shares_the_bottleneck() {
        let p = path(20.0, 2000.0, 800.0);
        let mut rng = RngStream::new(5, "tcp");
        let cfg = TcpSimConfig {
            connections: 4,
            ..cfg(CcAlgo::Nada)
        };
        let res = run_rate(&p, &cfg, &mut rng, 10.0);
        assert!(
            res.mean_mbps <= 2000.0 * 1.001,
            "4 flows cannot beat capacity: {}",
            res.mean_mbps
        );
        assert!(
            res.mean_mbps > 200.0,
            "4 flows make progress: {}",
            res.mean_mbps
        );
    }

    #[test]
    fn rate_engine_flushes_the_partial_tail() {
        let p = path(20.0, 1000.0, 500.0);
        let mut rng = RngStream::new(6, "tcp");
        let res = run_rate(&p, &cfg(CcAlgo::Bbr), &mut rng, 3.5);
        assert_eq!(res.per_second_mbps.len(), 4);
        let mut rng = RngStream::new(6, "tcp");
        let res = run_rate(&p, &cfg(CcAlgo::Bbr), &mut rng, 3.0);
        assert_eq!(res.per_second_mbps.len(), 3);
    }
}
