//! Transport substrate: end-to-end paths, fluid-model TCP, UDP, shaping.
//!
//! The paper's §3 dissects how TCP behaves over mmWave's ultra-high
//! bandwidth: multiple connections saturate the radio, a single connection
//! decays with UE–server distance, the default `tcp_wmem` send-buffer cap
//! pins single-connection throughput near 500 Mbps, and even a tuned buffer
//! trails UDP. This crate reproduces those mechanisms:
//!
//! * [`path`] — composes radio RTT, fiber propagation, per-path loss, and
//!   the bottleneck queueing model into a [`path::PathModel`],
//! * [`tcp`] — a fluid-flow congestion-control simulation (CUBIC and Reno)
//!   with slow start, send-buffer caps, shared-bottleneck fairness, and
//!   Poisson loss,
//! * [`bbr`] / [`nada`] — rate-based controllers (BBR's windowed
//!   BtlBw/RTprop model, NADA's RFC 8698 delay-gradient PI loop) that run
//!   on the explicit-queue rate engine behind the same [`tcp::TcpSim`]
//!   front door,
//! * [`bond`] — a bonded multi-interface path: DWRR striping across
//!   4G+5G links with per-link capacity estimation and RFC 8382-style
//!   shared-bottleneck detection,
//! * [`udp`] — constant-bit-rate flows (the iPerf3 workloads of §4),
//! * [`shaper`] — a `tc`-like trace-driven bandwidth shaper used by the
//!   video experiments.

pub mod bbr;
pub mod bond;
pub mod nada;
pub mod path;
mod rate;
pub mod shaper;
pub mod tcp;
pub mod udp;

pub use bond::{BondResult, BondedConfig, BondedSim};
pub use path::PathModel;
pub use shaper::BandwidthTrace;
pub use tcp::{CcAlgo, TcpSim, TcpSimConfig};
pub use udp::UdpFlow;
