//! Trace-driven bandwidth shaping (the paper's client-side `tc` emulation).
//!
//! The video experiments (§5.1) replay Lumos5G/4G throughput traces: "Using
//! the throughput traces, we use Linux tc on the client side and control the
//! instantaneous bandwidth." A [`BandwidthTrace`] holds one such trace at
//! 1-second granularity and answers the question a DASH player asks: *how
//! long does this chunk take to download starting at time t?*

use fiveg_simcore::budget;
use fiveg_simcore::faults::{self, FaultKind};

/// A throughput trace with uniform sample granularity.
#[derive(Debug, Clone)]
pub struct BandwidthTrace {
    /// Throughput samples in Mbps.
    samples: Vec<f64>,
    /// Sample granularity in seconds.
    granularity_s: f64,
    /// Whether every sample is zero, precomputed at construction —
    /// [`BandwidthTrace::transfer_time_s`] is called once per chunk by the
    /// video player and rescanning the whole trace per call dwarfs the
    /// transfer arithmetic itself.
    all_zero: bool,
}

impl BandwidthTrace {
    /// Creates a trace from samples at `granularity_s` spacing.
    ///
    /// # Panics
    /// Panics on an empty trace, non-positive granularity, or negative
    /// samples.
    pub fn new(samples: Vec<f64>, granularity_s: f64) -> Self {
        assert!(!samples.is_empty(), "trace must have samples");
        assert!(granularity_s > 0.0, "granularity must be positive");
        assert!(
            samples.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "samples must be finite and non-negative"
        );
        let all_zero = samples.iter().all(|&s| s == 0.0);
        BandwidthTrace {
            samples,
            granularity_s,
            all_zero,
        }
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 * self.granularity_s
    }

    /// Raw samples in Mbps.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sample granularity in seconds.
    pub fn granularity_s(&self) -> f64 {
        self.granularity_s
    }

    /// Mean throughput over the whole trace, Mbps.
    pub fn mean_mbps(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Instantaneous bandwidth at `t_s` (the trace loops past its end, as
    /// in the paper's trace replay).
    ///
    /// Under an ambient fault plane, a stall window covering `t_s` zeroes
    /// the bandwidth: the shaped link carries nothing for the duration.
    pub fn bandwidth_at(&self, t_s: f64) -> f64 {
        if faults::is_active(FaultKind::StallWindow, t_s) {
            return 0.0;
        }
        let idx = (t_s.max(0.0) / self.granularity_s) as usize % self.samples.len();
        self.samples[idx]
    }

    /// Seconds needed to transfer `bytes` starting at `start_s`, honouring
    /// the time-varying bandwidth. Dead air (zero-throughput stretches) is
    /// waited out. Returns `f64::INFINITY` if the whole looped trace carries
    /// zero bandwidth.
    pub fn transfer_time_s(&self, bytes: f64, start_s: f64) -> f64 {
        assert!(bytes >= 0.0, "bytes must be non-negative");
        if bytes == 0.0 {
            return 0.0;
        }
        if self.all_zero {
            return f64::INFINITY;
        }
        let mut remaining_bits = bytes * 8.0;
        let mut t = start_s.max(0.0);
        loop {
            budget::charge(1);
            let slot_end = ((t / self.granularity_s).floor() + 1.0) * self.granularity_s;
            let window = slot_end - t;
            // `bandwidth_at` also applies ambient stall-window faults.
            let rate_bps = self.bandwidth_at(t) * 1e6;
            let can_send = rate_bps * window;
            if can_send >= remaining_bits {
                let dt = if rate_bps > 0.0 {
                    remaining_bits / rate_bps
                } else {
                    window
                };
                return t + dt - start_s.max(0.0);
            }
            remaining_bits -= can_send;
            t = slot_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_transfer() {
        let tr = BandwidthTrace::new(vec![8.0; 10], 1.0); // 8 Mbps = 1 MB/s
        let t = tr.transfer_time_s(2_000_000.0, 0.0);
        assert!((t - 2.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn transfer_straddles_rate_changes() {
        // 1 s at 8 Mbps (1 MB), then 16 Mbps.
        let tr = BandwidthTrace::new(vec![8.0, 16.0, 16.0], 1.0);
        // 3 MB: 1 MB in the first second, 2 MB in the next 1 s.
        let t = tr.transfer_time_s(3_000_000.0, 0.0);
        assert!((t - 2.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn mid_slot_start() {
        let tr = BandwidthTrace::new(vec![8.0, 8.0], 1.0);
        let t = tr.transfer_time_s(500_000.0, 0.5);
        assert!((t - 0.5).abs() < 1e-9, "{t}");
    }

    #[test]
    fn zero_throughput_stretch_stalls_the_transfer() {
        let tr = BandwidthTrace::new(vec![8.0, 0.0, 0.0, 8.0], 1.0);
        // 2 MB: 1 MB in second 0, dead air for 2 s, 1 MB in second 3.
        let t = tr.transfer_time_s(2_000_000.0, 0.0);
        assert!((t - 4.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn trace_loops() {
        let tr = BandwidthTrace::new(vec![8.0], 1.0);
        assert_eq!(tr.bandwidth_at(123.4), 8.0);
        let t = tr.transfer_time_s(10_000_000.0, 0.0); // 10 MB at 1 MB/s
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn all_zero_trace_is_infinite() {
        let tr = BandwidthTrace::new(vec![0.0, 0.0], 1.0);
        assert!(tr.transfer_time_s(1.0, 0.0).is_infinite());
    }

    #[test]
    fn zero_bytes_is_instant() {
        let tr = BandwidthTrace::new(vec![1.0], 1.0);
        assert_eq!(tr.transfer_time_s(0.0, 5.0), 0.0);
    }

    #[test]
    fn mean_is_arithmetic() {
        let tr = BandwidthTrace::new(vec![10.0, 20.0, 30.0], 1.0);
        assert_eq!(tr.mean_mbps(), 20.0);
    }

    #[test]
    #[should_panic(expected = "must have samples")]
    fn rejects_empty() {
        BandwidthTrace::new(vec![], 1.0);
    }
}
