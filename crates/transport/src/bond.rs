//! Bonded multi-interface transport: one flow striped across 4G+5G links.
//!
//! The production shape this follows: a rate-based controller (BBR or
//! NADA) paces the aggregate flow, a **DWRR** (deficit-weighted round
//! robin) scheduler stripes it across the member links with quanta
//! proportional to per-link capacity *estimates* (windowed max of
//! delivered rate — the scheduler has no oracle view of the radio), each
//! link runs its own bottleneck queue, and an RFC 8382-style
//! **shared-bottleneck detector** (SBD) watches the per-link delay series
//! — summary statistics (variability, skewness) plus cross-correlation —
//! to decide whether the links queue independently (a true capacity
//! aggregate) or behind one shared choke point (e.g. a capped carrier
//! core), in which case bonding buys redundancy, not bandwidth.
//!
//! Per-link capacity wobbles with a small deterministic jitter stream:
//! volatile radios are the whole point of bonding, and the wobble is what
//! de-correlates independent links' delay series so SBD has a signal.

use crate::bbr::{Bbr, WindowedMax};
use crate::nada::Nada;
use crate::path::PathModel;
use crate::tcp::{step_loss_probability, CcAlgo};
use fiveg_simcore::faults::{self, FaultKind};
use fiveg_simcore::recovery::{self, RecoveryKind};
use fiveg_simcore::{budget, guard, telemetry, RngStream};

/// DWRR chunk size: one MSS of bits.
const CHUNK_BITS: f64 = 1460.0 * 8.0;
/// Capacity-estimate filter window, seconds.
const EST_WINDOW_S: f64 = 2.0;
/// Relative std-dev of the per-link capacity jitter.
const CAP_JITTER: f64 = 0.05;
/// SBD grouping threshold on the delay cross-correlation.
const SBD_CORR_THRESH: f64 = 0.7;
/// SBD needs at least this many delay samples per link.
const SBD_MIN_SAMPLES: usize = 50;

/// Configuration of a bonded run.
#[derive(Debug, Clone)]
pub struct BondedConfig {
    /// Member links (typically `[LTE, mmWave]`).
    pub links: Vec<PathModel>,
    /// Optional shared choke point downstream of all links (carrier core
    /// cap), Mbps. `None` means the links bottleneck independently.
    pub shared_cap_mbps: Option<f64>,
    /// Aggregate congestion controller (must be rate-based).
    pub algo: CcAlgo,
    /// Sender buffer cap, bytes.
    pub wmem_bytes: f64,
    /// Simulation step, seconds.
    pub dt_s: f64,
}

impl BondedConfig {
    /// A bonded flow over `links` with the default tuned buffer.
    pub fn new(links: Vec<PathModel>, algo: CcAlgo) -> Self {
        BondedConfig {
            links,
            shared_cap_mbps: None,
            algo,
            wmem_bytes: crate::tcp::WMEM_TUNED_BYTES,
            dt_s: 0.01,
        }
    }
}

/// Result of a bonded run.
#[derive(Debug, Clone)]
pub struct BondResult {
    /// Mean end-to-end goodput, Mbps.
    pub mean_mbps: f64,
    /// Per-link mean delivered rate, Mbps.
    pub per_link_mbps: Vec<f64>,
    /// Per-link share of the delivered bits (sums to 1 when anything
    /// was delivered).
    pub per_link_share: Vec<f64>,
    /// SBD group id per link (links sharing a bottleneck share an id).
    pub sbd_groups: Vec<usize>,
    /// Per-link delay-skewness estimates (RFC 8382 summary statistic).
    pub skew_est: Vec<f64>,
    /// Per-link delay-variability estimates (std dev, seconds).
    pub var_est: Vec<f64>,
    /// Worst queueing delay observed on any link, seconds.
    pub max_queue_delay_s: f64,
    /// Loss events across all links.
    pub loss_events: u64,
    /// Per-second goodput samples, Mbps.
    pub per_second_mbps: Vec<f64>,
}

impl BondResult {
    /// Number of distinct SBD groups.
    pub fn group_count(&self) -> usize {
        let mut ids: Vec<usize> = self.sbd_groups.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// The aggregate pacing controller.
enum BondController {
    Bbr(Bbr),
    Nada(Nada),
}

impl BondController {
    fn new(algo: CcAlgo, init_rate_mbps: f64) -> BondController {
        match algo {
            CcAlgo::Bbr => BondController::Bbr(Bbr::new(init_rate_mbps)),
            CcAlgo::Nada => BondController::Nada(Nada::new(init_rate_mbps)),
            _ => panic!("bonded transport requires a rate-based controller (bbr or nada)"),
        }
    }

    fn rate_mbps(&self, mss_bytes: f64, rtt_s: f64) -> f64 {
        match self {
            BondController::Bbr(b) => b
                .pacing_rate_mbps()
                .min(b.cwnd_rate_cap_mbps(mss_bytes, rtt_s)),
            BondController::Nada(n) => n.rate_mbps(),
        }
    }

    fn on_sample(&mut self, t: f64, delivered_mbps: f64, rtt_s: f64, qdelay_s: f64, p_loss: f64) {
        match self {
            BondController::Bbr(b) => b.on_sample(t, delivered_mbps, rtt_s, qdelay_s),
            BondController::Nada(n) => {
                n.on_loss_ratio_sample(p_loss);
                n.on_feedback(t, qdelay_s * 1e3, rtt_s * 1e3);
            }
        }
    }

    fn on_rto(&mut self, t: f64) {
        match self {
            BondController::Bbr(b) => b.on_rto(t),
            BondController::Nada(n) => *n = Nada::new(crate::nada::RMIN_MBPS),
        }
    }
}

/// A bonded simulation over `cfg.links`.
pub struct BondedSim {
    cfg: BondedConfig,
    rng: RngStream,
}

impl BondedSim {
    /// Creates the simulation.
    ///
    /// # Panics
    /// Panics on an empty link set, a non-positive step, or a
    /// window-based `algo`.
    pub fn new(cfg: BondedConfig, rng: RngStream) -> Self {
        assert!(!cfg.links.is_empty(), "need at least one link");
        assert!(cfg.dt_s > 0.0, "step must be positive");
        assert!(
            cfg.algo.is_rate_based(),
            "bonded transport requires a rate-based controller (bbr or nada)"
        );
        BondedSim { cfg, rng }
    }

    /// Runs for `duration_s`. Honours the ambient fault plane with the
    /// same contract as [`crate::TcpSim::run`]: RTT spikes and loss
    /// bursts modulate every member link, a stall window freezes the
    /// whole bonded device while the RTO machinery backs off and
    /// eventually resets the aggregate controller.
    pub fn run(&mut self, duration_s: f64) -> BondResult {
        let n = self.cfg.links.len();
        let dt = self.cfg.dt_s;
        let mss = self.cfg.links[0].mss_bytes;
        let base_rtts: Vec<f64> = self.cfg.links.iter().map(|l| l.rtt_ms / 1e3).collect();
        let min_rtt = base_rtts.iter().cloned().fold(f64::INFINITY, f64::min);
        let init_rate = 10.0 * mss * 8.0 / 1e6 / min_rtt;
        let mut ctrl = BondController::new(self.cfg.algo, init_rate);

        let mut backlog = vec![0.0_f64; n];
        let mut shared_backlog = 0.0_f64;
        let mut estimates: Vec<WindowedMax> = (0..n).map(|_| WindowedMax::default()).collect();
        let mut deficit = vec![0.0_f64; n];
        let mut rr = 0usize;
        let mut delivered_link_mb = vec![0.0_f64; n];
        let mut delay_series: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut max_qdelay = 0.0_f64;
        let mut loss_events = 0u64;
        let mut delivered_mb = 0.0;
        let mut per_second = Vec::new();
        let mut second_acc = 0.0;
        let mut next_second = 1.0;
        let mut second_start = 0.0;
        let mut t = 0.0;
        // RTO state across a stall window (fault plane only).
        let mut stall_since: Option<f64> = None;
        let mut rto_s = 0.0;
        let mut next_rto_at = 0.0;
        let mut backoffs = 0u32;
        let mut did_reset = false;

        telemetry::clock(0.0);
        let _run_span = telemetry::span("transport/bond/run");
        while t < duration_s {
            budget::charge(1);
            telemetry::clock(t);
            let (rtt_mult, loss_mult, stalled) = if faults::enabled() {
                (
                    faults::magnitude(FaultKind::RttSpike, t).map_or(1.0, |m| 1.0 + m.max(0.0)),
                    faults::magnitude(FaultKind::LossBurst, t).map_or(1.0, |m| m.max(1.0)),
                    faults::is_active(FaultKind::StallWindow, t),
                )
            } else {
                (1.0, 1.0, false)
            };
            // The jitter draws happen every step, stalled or not, so the
            // RNG cursor (and thus every later draw) is independent of
            // where fault windows fall relative to steps.
            let jitter: Vec<f64> = (0..n).map(|_| self.rng.normal(0.0, 1.0)).collect();
            if stalled {
                let since = match stall_since {
                    Some(s) => s,
                    None => {
                        rto_s = (2.0 * min_rtt).max(1.0);
                        next_rto_at = t + rto_s;
                        backoffs = 0;
                        did_reset = false;
                        stall_since = Some(t);
                        t
                    }
                };
                if t >= next_rto_at {
                    backoffs += 1;
                    telemetry::count("transport/rto", 1);
                    telemetry::observe("transport/rto_backoff_s", rto_s);
                    ctrl.on_rto(t);
                    recovery::record(RecoveryKind::TcpRto, t, rto_s, t - since, || {
                        format!("bonded backoff #{backoffs}, pacing collapsed")
                    });
                    if backoffs >= 5 && !did_reset {
                        did_reset = true;
                        telemetry::count("transport/conn_reset", 1);
                        ctrl = BondController::new(self.cfg.algo, init_rate);
                        recovery::record(RecoveryKind::TcpConnReset, t, rto_s, t - since, || {
                            format!("bonded reset after {backoffs} backoffs")
                        });
                    }
                    rto_s *= 2.0;
                    next_rto_at = t + rto_s;
                    guard::check(
                        "transport",
                        "rto-bounds",
                        rto_s.is_finite() && rto_s >= (2.0 * min_rtt).max(1.0),
                        t,
                        || format!("RTO {rto_s}s below the floor after backoff #{backoffs}"),
                    );
                }
                t += dt;
                if t >= next_second {
                    per_second.push(second_acc);
                    second_acc = 0.0;
                    next_second += 1.0;
                    second_start = t;
                }
                continue;
            }
            stall_since = None;

            // Per-link effective capacity: radio volatility as a small
            // deterministic jitter stream.
            let caps: Vec<f64> = self
                .cfg
                .links
                .iter()
                .zip(&jitter)
                .map(|(l, j)| (l.capacity_mbps * (1.0 + CAP_JITTER * j)).max(1.0))
                .collect();
            let shared_qdelay = self
                .cfg
                .shared_cap_mbps
                .map_or(0.0, |c| shared_backlog / (c * 1e6));
            let qdelays: Vec<f64> = (0..n)
                .map(|i| self.cfg.links[i].queueing_delay_s(backlog[i]) + shared_qdelay)
                .collect();
            for (i, q) in qdelays.iter().enumerate() {
                guard::non_negative("transport", "queue-delay-nonneg", *q, 0.0, t);
                delay_series[i].push(*q);
                max_qdelay = max_qdelay.max(*q);
            }
            // The controller sees the delivery-weighted view: min base
            // RTT (the scheduler prefers the fast link for feedback) plus
            // the worst member queueing delay — the conservative signal.
            let agg_qdelay = qdelays.iter().cloned().fold(0.0, f64::max);
            let rtt_s = min_rtt * rtt_mult + agg_qdelay;
            let rate = ctrl
                .rate_mbps(mss, rtt_s)
                .min(self.cfg.wmem_bytes * 8.0 / 1e6 / rtt_s);

            // DWRR: stripe this step's bits across the links in chunks,
            // quanta proportional to the capacity estimates.
            let weights: Vec<f64> = estimates
                .iter()
                .zip(&caps)
                .map(|(e, &c)| if e.get() > 0.0 { e.get() } else { c })
                .collect();
            let w_sum: f64 = weights.iter().sum();
            let quanta: Vec<f64> = weights
                .iter()
                .map(|w| CHUNK_BITS * (w / w_sum * n as f64).max(0.1))
                .collect();
            let inflow_bits = rate * 1e6 * dt;
            let mut remaining = inflow_bits;
            let mut alloc = vec![0.0_f64; n];
            while remaining >= CHUNK_BITS {
                let i = rr % n;
                deficit[i] += quanta[i];
                while deficit[i] >= CHUNK_BITS && remaining >= CHUNK_BITS {
                    alloc[i] += CHUNK_BITS;
                    deficit[i] -= CHUNK_BITS;
                    remaining -= CHUNK_BITS;
                }
                rr += 1;
            }
            // Sub-chunk tail goes to the current link: conservation is
            // exact by construction, and the guard holds it there.
            if remaining > 0.0 {
                alloc[rr % n] += remaining;
            }
            let allocated: f64 = alloc.iter().sum();
            guard::check(
                "transport",
                "dwrr-conservation",
                (allocated - inflow_bits).abs() <= 1e-6 * inflow_bits.abs() + 1e-9,
                t,
                || format!("DWRR allocated {allocated} of {inflow_bits} inflow bits"),
            );

            // Per-link queues: integrate, drain at capacity, spill past
            // the buffer into overflow loss.
            let mut departs = vec![0.0_f64; n];
            for i in 0..n {
                backlog[i] += alloc[i];
                let depart = backlog[i].min(caps[i] * 1e6 * dt);
                backlog[i] -= depart;
                departs[i] = depart;
                let spill = backlog[i] - self.cfg.links[i].buffer_bits();
                let overflow_frac = if spill > 0.0 && alloc[i] > 0.0 {
                    backlog[i] = self.cfg.links[i].buffer_bits();
                    telemetry::count("transport/bond/overflow", 1);
                    (spill / alloc[i]).min(1.0)
                } else {
                    0.0
                };
                // Random path loss on the delivered stream.
                let thr = depart / 1e6 / dt;
                let pkts = self.cfg.links[i].packets_per_sec(thr) * dt;
                let p_rand = 1.0 - (-pkts * self.cfg.links[i].loss_per_pkt * loss_mult).exp();
                let p_step = step_loss_probability(p_rand, overflow_frac);
                if self.rng.chance(p_step) {
                    telemetry::count("transport/loss", 1);
                    loss_events += 1;
                    if faults::is_active(FaultKind::LossBurst, t) {
                        recovery::record(RecoveryKind::TcpFastRetransmit, t, rtt_s, 0.0, || {
                            format!("bonded link {i}: rate-based repair")
                        });
                    }
                }
            }
            // Optional shared core bottleneck downstream of the links.
            let step_delivered_bits = if let Some(cap) = self.cfg.shared_cap_mbps {
                shared_backlog += departs.iter().sum::<f64>();
                let out = shared_backlog.min(cap * 1e6 * dt);
                shared_backlog -= out;
                // The shared queue re-proportions delivery across links.
                let total: f64 = departs.iter().sum();
                for i in 0..n {
                    let share = if total > 0.0 { departs[i] / total } else { 0.0 };
                    delivered_link_mb[i] += share * out / 1e6;
                }
                out
            } else {
                for i in 0..n {
                    delivered_link_mb[i] += departs[i] / 1e6;
                }
                departs.iter().sum()
            };
            delivered_mb += step_delivered_bits / 1e6;
            second_acc += step_delivered_bits / 1e6;

            // Capacity estimation from what each link actually delivered.
            for i in 0..n {
                estimates[i].update(t, departs[i] / 1e6 / dt, EST_WINDOW_S);
            }
            let link0_mbps = departs[0] / 1e6 / dt;

            let delivered_mbps = step_delivered_bits / 1e6 / dt;
            let p_agg = {
                // Deterministic aggregate loss signal for the controller.
                let total_cap: f64 = caps.iter().sum();
                if self.cfg.shared_cap_mbps.is_some_and(|c| rate > c) || rate > total_cap {
                    0.02
                } else {
                    0.0
                }
            };
            ctrl.on_sample(t, delivered_mbps, rtt_s, agg_qdelay, p_agg);

            t += dt;
            if t >= next_second {
                per_second.push(second_acc);
                second_acc = 0.0;
                next_second += 1.0;
                second_start = t;
                telemetry::observe("transport/queue_delay_s", agg_qdelay);
                telemetry::series("transport/bond/split_mbps_t", t, link0_mbps);
            }
        }

        if guard::enabled() {
            let ledger: f64 = per_second.iter().sum::<f64>() + second_acc;
            guard::check(
                "transport",
                "bytes-conserved",
                (ledger - delivered_mb).abs() <= 1e-6 * delivered_mb.abs() + 1e-9,
                duration_s,
                || format!("per-second ledger {ledger} vs delivered {delivered_mb}"),
            );
            guard::non_negative("transport", "goodput", delivered_mb, 0.0, duration_s);
        }
        let tail_s = t - second_start;
        if second_acc > 0.0 && tail_s > 0.0 {
            per_second.push(second_acc / tail_s);
        }

        let (sbd_groups, skew_est, var_est) = sbd_group(&delay_series);
        guard::in_range(
            "transport",
            "sbd-groups-bounds",
            count_groups(&sbd_groups) as f64,
            1.0,
            n as f64,
            0.0,
            duration_s,
        );
        telemetry::gauge("transport/bond/groups", count_groups(&sbd_groups) as f64);
        telemetry::gauge("transport/mean_mbps", delivered_mb / duration_s);

        let total_link: f64 = delivered_link_mb.iter().sum();
        BondResult {
            mean_mbps: delivered_mb / duration_s,
            per_link_mbps: delivered_link_mb.iter().map(|mb| mb / duration_s).collect(),
            per_link_share: delivered_link_mb
                .iter()
                .map(|mb| {
                    if total_link > 0.0 {
                        mb / total_link
                    } else {
                        0.0
                    }
                })
                .collect(),
            sbd_groups,
            skew_est,
            var_est,
            max_queue_delay_s: max_qdelay,
            loss_events,
            per_second_mbps: per_second,
        }
    }
}

fn count_groups(groups: &[usize]) -> usize {
    let mut ids = groups.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// RFC 8382-style shared-bottleneck detection over per-link delay series:
/// summary statistics (std dev, skewness) per link, then grouping by the
/// cross-correlation of the mean-removed series. Returns
/// `(group id per link, skewness per link, std dev per link)`.
fn sbd_group(series: &[Vec<f64>]) -> (Vec<usize>, Vec<f64>, Vec<f64>) {
    let n = series.len();
    let stats: Vec<(f64, f64, f64)> = series.iter().map(|s| moments(s)).collect();
    let skew: Vec<f64> = stats.iter().map(|s| s.2).collect();
    let sd: Vec<f64> = stats.iter().map(|s| s.1).collect();
    let mut groups = vec![usize::MAX; n];
    let mut next = 0usize;
    for i in 0..n {
        if groups[i] != usize::MAX {
            continue;
        }
        groups[i] = next;
        for j in (i + 1)..n {
            if groups[j] != usize::MAX {
                continue;
            }
            let len = series[i].len().min(series[j].len());
            if len < SBD_MIN_SAMPLES {
                continue;
            }
            if correlation(&series[i][..len], &series[j][..len]) > SBD_CORR_THRESH {
                groups[j] = next;
            }
        }
        next += 1;
    }
    (groups, skew, sd)
}

/// `(mean, std dev, skewness)` of a series (zeros when degenerate).
fn moments(s: &[f64]) -> (f64, f64, f64) {
    if s.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = s.len() as f64;
    let mean = s.iter().sum::<f64>() / n;
    let var = s.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        return (mean, 0.0, 0.0);
    }
    let sd = var.sqrt();
    let skew = s.iter().map(|x| ((x - mean) / sd).powi(3)).sum::<f64>() / n;
    (mean, sd, skew)
}

/// Pearson correlation of two equal-length series (0 when degenerate).
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(rtt_ms: f64, capacity: f64, dist_km: f64) -> PathModel {
        PathModel {
            rtt_ms,
            loss_per_pkt: crate::path::BASE_LOSS + crate::path::LOSS_PER_KM * dist_km,
            capacity_mbps: capacity,
            mss_bytes: 1460.0,
            queue_bdp: crate::path::DEFAULT_QUEUE_BDP,
        }
    }

    fn lte_plus_mmwave() -> Vec<PathModel> {
        vec![link(30.0, 150.0, 100.0), link(20.0, 1500.0, 100.0)]
    }

    #[test]
    fn bonding_aggregates_independent_links() {
        let mut sim = BondedSim::new(
            BondedConfig::new(lte_plus_mmwave(), CcAlgo::Nada),
            RngStream::new(1, "bond"),
        );
        let res = sim.run(15.0);
        assert!(
            res.mean_mbps > 150.0,
            "the bond must beat the LTE link alone: {}",
            res.mean_mbps
        );
        assert!(
            res.mean_mbps <= 1650.0 * 1.1,
            "and cannot beat the capacity sum: {}",
            res.mean_mbps
        );
    }

    #[test]
    fn dwrr_prefers_the_wider_link() {
        let mut sim = BondedSim::new(
            BondedConfig::new(lte_plus_mmwave(), CcAlgo::Nada),
            RngStream::new(2, "bond"),
        );
        let res = sim.run(15.0);
        assert!(
            res.per_link_share[1] > res.per_link_share[0],
            "mmWave must carry the larger share: {:?}",
            res.per_link_share
        );
        let total: f64 = res.per_link_share.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1: {total}");
    }

    #[test]
    fn independent_links_form_separate_sbd_groups() {
        let mut sim = BondedSim::new(
            BondedConfig::new(lte_plus_mmwave(), CcAlgo::Nada),
            RngStream::new(3, "bond"),
        );
        let res = sim.run(15.0);
        assert_eq!(
            res.group_count(),
            2,
            "independent bottlenecks: groups {:?}",
            res.sbd_groups
        );
    }

    #[test]
    fn shared_core_cap_collapses_the_groups() {
        let mut cfg = BondedConfig::new(lte_plus_mmwave(), CcAlgo::Nada);
        cfg.shared_cap_mbps = Some(300.0);
        let mut sim = BondedSim::new(cfg, RngStream::new(4, "bond"));
        let res = sim.run(15.0);
        assert_eq!(
            res.group_count(),
            1,
            "a shared choke point must group the links: {:?}",
            res.sbd_groups
        );
        assert!(
            res.mean_mbps <= 300.0 * 1.05,
            "the shared cap binds: {}",
            res.mean_mbps
        );
    }

    #[test]
    fn bbr_also_drives_the_bond() {
        let mut sim = BondedSim::new(
            BondedConfig::new(lte_plus_mmwave(), CcAlgo::Bbr),
            RngStream::new(5, "bond"),
        );
        let res = sim.run(15.0);
        assert!(res.mean_mbps > 150.0, "BBR bond: {}", res.mean_mbps);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut sim = BondedSim::new(
                BondedConfig::new(lte_plus_mmwave(), CcAlgo::Nada),
                RngStream::new(6, "bond"),
            );
            sim.run(10.0)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.mean_mbps, b.mean_mbps);
        assert_eq!(a.per_second_mbps, b.per_second_mbps);
        assert_eq!(a.sbd_groups, b.sbd_groups);
    }

    #[test]
    #[should_panic(expected = "rate-based controller")]
    fn rejects_window_based_controllers() {
        BondedSim::new(
            BondedConfig::new(lte_plus_mmwave(), CcAlgo::Cubic),
            RngStream::new(7, "bond"),
        );
    }

    #[test]
    fn sbd_statistics_are_sane() {
        // A constant series has zero variability and skewness.
        let (m, sd, sk) = moments(&[3.0; 100]);
        assert_eq!((m, sd, sk), (3.0, 0.0, 0.0));
        // Correlation of a series with itself is 1.
        let s: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        assert!((correlation(&s, &s) - 1.0).abs() < 1e-12);
        // Anti-correlated series must not group.
        let neg: Vec<f64> = s.iter().map(|x| -x).collect();
        assert!(correlation(&s, &neg) < -0.99);
        let (groups, _, _) = sbd_group(&[s, neg]);
        assert_eq!(groups, vec![0, 1]);
    }
}
