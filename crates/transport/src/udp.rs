//! Constant-bit-rate UDP flows.
//!
//! The paper uses UDP via iPerf3 both as the ceiling in Fig 8 ("UDP achieves
//! peak observable throughput across all server locations") and to hold the
//! UE at controlled throughput targets for the power experiments (§4.3).

use crate::path::PathModel;
use fiveg_simcore::faults::{self, FaultKind};

/// A CBR UDP flow pushed at a target rate.
#[derive(Debug, Clone, Copy)]
pub struct UdpFlow {
    /// Sender's target rate, Mbps.
    pub target_mbps: f64,
}

/// Outcome of a UDP run over a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UdpResult {
    /// Receiver-side goodput, Mbps.
    pub achieved_mbps: f64,
    /// Fraction of datagrams lost.
    pub loss_fraction: f64,
}

impl UdpFlow {
    /// Creates a flow with the given target rate.
    ///
    /// # Panics
    /// Panics if the target is negative.
    pub fn new(target_mbps: f64) -> Self {
        assert!(target_mbps >= 0.0, "target must be non-negative");
        UdpFlow { target_mbps }
    }

    /// Runs the flow over `path`: goodput is capacity-clipped, and overload
    /// manifests as datagram loss (on top of the path's random loss).
    pub fn run(&self, path: &PathModel) -> UdpResult {
        self.run_with(path, path.loss_per_pkt, false)
    }

    /// [`Self::run`] at simulated time `t_s`: under an ambient fault plane,
    /// a loss burst multiplies the path's per-packet loss by the window's
    /// magnitude and a stall window drops every datagram. Identical to
    /// `run` when no plane is installed.
    pub fn run_at(&self, path: &PathModel, t_s: f64) -> UdpResult {
        let loss = match faults::magnitude(FaultKind::LossBurst, t_s) {
            Some(m) => (path.loss_per_pkt * m.max(1.0)).min(1.0),
            None => path.loss_per_pkt,
        };
        self.run_with(path, loss, faults::is_active(FaultKind::StallWindow, t_s))
    }

    fn run_with(&self, path: &PathModel, loss_per_pkt: f64, stalled: bool) -> UdpResult {
        if self.target_mbps == 0.0 {
            return UdpResult {
                achieved_mbps: 0.0,
                loss_fraction: 0.0,
            };
        }
        if stalled {
            return UdpResult {
                achieved_mbps: 0.0,
                loss_fraction: 1.0,
            };
        }
        let delivered = self.target_mbps.min(path.capacity_mbps);
        let overload_loss = if self.target_mbps > 0.0 {
            1.0 - delivered / self.target_mbps
        } else {
            0.0
        };
        // Random loss applies to what got through the bottleneck.
        let achieved = delivered * (1.0 - loss_per_pkt);
        UdpResult {
            achieved_mbps: achieved,
            loss_fraction: (overload_loss + loss_per_pkt * (1.0 - overload_loss)).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(capacity: f64) -> PathModel {
        PathModel {
            rtt_ms: 20.0,
            loss_per_pkt: 1e-6,
            capacity_mbps: capacity,
            mss_bytes: 1460.0,
            queue_bdp: crate::path::DEFAULT_QUEUE_BDP,
        }
    }

    #[test]
    fn udp_reaches_capacity() {
        let r = UdpFlow::new(5000.0).run(&path(2200.0));
        assert!(
            (r.achieved_mbps - 2200.0).abs() < 1.0,
            "{}",
            r.achieved_mbps
        );
    }

    #[test]
    fn under_target_passes_through() {
        let r = UdpFlow::new(100.0).run(&path(2200.0));
        assert!((r.achieved_mbps - 100.0).abs() < 0.01);
        assert!(r.loss_fraction < 1e-5);
    }

    #[test]
    fn overload_shows_as_loss() {
        let r = UdpFlow::new(4400.0).run(&path(2200.0));
        assert!((r.loss_fraction - 0.5).abs() < 0.01, "{}", r.loss_fraction);
    }

    #[test]
    fn zero_target_is_silent() {
        let r = UdpFlow::new(0.0).run(&path(2200.0));
        assert_eq!(r.achieved_mbps, 0.0);
        assert_eq!(r.loss_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_target() {
        UdpFlow::new(-1.0);
    }
}
