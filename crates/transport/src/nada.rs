//! NADA congestion control (RFC 8698), fluid-model flavour.
//!
//! NADA folds every congestion signal the path offers into one composite
//! delay value and steers the rate with a PI controller on it:
//!
//! ```text
//! x_curr = d_queuing + DLOSS_REF · (p_loss / PLR_REF)²
//! ```
//!
//! Queueing delay enters linearly; loss enters as an equivalent delay
//! penalty, quadratic in the loss ratio so that the controller shrugs off
//! the stray 10⁻⁷-grade random losses of a long fiber path (which would
//! halve CUBIC's window) while still backing off hard when a bottleneck
//! actually drops packets. Two update regimes per RFC 8698 §4.3:
//!
//! * **accelerated ramp-up** while the path shows no congestion
//!   (`x_curr < QEPS`): multiplicative growth bounded by
//!   `γ = min(GAMMA_MAX, QBOUND / (rtt + DELTA))`;
//! * **gradual update** otherwise: the PI step on the offset between
//!   `x_curr` and the reference congestion level for the current rate.

use fiveg_simcore::guard;

/// Minimum send rate, Mbps (RFC 8698 RMIN, scaled to our link class).
pub const RMIN_MBPS: f64 = 1.0;
/// Maximum send rate, Mbps.
pub const RMAX_MBPS: f64 = 4000.0;
/// Flow priority weight (1.0 = neutral).
pub const PRIO: f64 = 1.0;
/// Reference congestion level, ms.
pub const XREF_MS: f64 = 10.0;
/// Proportional gain of the gradual-update step.
pub const KAPPA: f64 = 0.5;
/// Derivative weight of the gradual-update step.
pub const ETA: f64 = 2.0;
/// Target feedback interval, ms (the PI time constant).
pub const TAU_MS: f64 = 500.0;
/// Actual feedback interval, ms.
pub const DELTA_MS: f64 = 100.0;
/// Reference delay penalty for loss, ms.
pub const DLOSS_REF_MS: f64 = 10.0;
/// Reference packet-loss ratio for the quadratic loss term.
pub const PLR_REF: f64 = 0.01;
/// Queueing-delay threshold below which ramp-up is allowed, ms.
pub const QEPS_MS: f64 = 10.0;
/// Upper bound of self-inflicted queueing delay during ramp-up, ms.
pub const QBOUND_MS: f64 = 50.0;
/// Hard cap on the per-interval ramp-up gain.
pub const GAMMA_MAX: f64 = 0.5;
/// EWMA weight for the loss-ratio estimator.
pub const LOSS_EWMA_ALPHA: f64 = 0.1;

/// One flow's NADA controller state.
#[derive(Debug, Clone)]
pub struct Nada {
    rate_mbps: f64,
    /// Smoothed loss ratio (EWMA over feedback intervals).
    p_loss: f64,
    /// Previous composite congestion signal, ms.
    x_prev_ms: f64,
    /// Time of the last feedback update, s.
    last_update_s: f64,
    /// True until the first gradual-update step runs.
    first_update: bool,
}

impl Nada {
    /// A fresh controller starting at `init_rate_mbps` (clamped to
    /// `[RMIN, RMAX]`).
    pub fn new(init_rate_mbps: f64) -> Self {
        Nada {
            rate_mbps: init_rate_mbps.clamp(RMIN_MBPS, RMAX_MBPS),
            p_loss: 0.0,
            x_prev_ms: 0.0,
            last_update_s: 0.0,
            first_update: true,
        }
    }

    /// The current reference rate, Mbps.
    pub fn rate_mbps(&self) -> f64 {
        self.rate_mbps
    }

    /// The smoothed loss-ratio estimate.
    pub fn loss_ratio(&self) -> f64 {
        self.p_loss
    }

    /// Folds one interval's observed loss ratio into the EWMA.
    pub fn on_loss_ratio_sample(&mut self, observed: f64) {
        let observed = observed.clamp(0.0, 1.0);
        self.p_loss += LOSS_EWMA_ALPHA * (observed - self.p_loss);
    }

    /// The composite congestion signal for a queueing delay of
    /// `d_queue_ms`, in equivalent milliseconds.
    pub fn aggregate_signal_ms(&self, d_queue_ms: f64) -> f64 {
        let loss_term = DLOSS_REF_MS * (self.p_loss / PLR_REF).powi(2);
        d_queue_ms.max(0.0) + loss_term
    }

    /// One feedback update at sim time `t`: queueing delay and RTT in ms.
    /// Call every `DELTA_MS`; earlier calls are absorbed without a rate
    /// change so a finer sim step cannot over-drive the PI loop.
    pub fn on_feedback(&mut self, t: f64, d_queue_ms: f64, rtt_ms: f64) {
        let delta_ms = if self.first_update {
            DELTA_MS
        } else {
            (t - self.last_update_s) * 1e3
        };
        if !self.first_update && delta_ms < DELTA_MS - 1e-9 {
            return;
        }
        self.first_update = false;
        self.last_update_s = t;

        let x_curr = self.aggregate_signal_ms(d_queue_ms);
        if x_curr < QEPS_MS {
            // Accelerated ramp-up: the multiplicative gain is capped so
            // that one interval's growth cannot queue more than QBOUND.
            let gamma = (QBOUND_MS / (rtt_ms.max(1.0) + DELTA_MS)).min(GAMMA_MAX);
            self.rate_mbps *= 1.0 + gamma;
            fiveg_simcore::telemetry::count("transport/nada/rampup", 1);
        } else {
            // Gradual update: PI step on the congestion-level offset. The
            // RMAX-scaled step is additionally bounded to ±GAMMA_MAX of
            // the current rate per interval: RFC 8698's gains are tuned
            // for RTC-grade RMAX, and an unbounded step at Gbps-scale
            // RMAX just slams between the clamps.
            let x_offset = x_curr - PRIO * XREF_MS * RMAX_MBPS / self.rate_mbps;
            let x_diff = x_curr - self.x_prev_ms;
            let raw =
                -KAPPA * (delta_ms / TAU_MS) * ((x_offset + ETA * x_diff) / TAU_MS) * RMAX_MBPS;
            let bound = GAMMA_MAX * self.rate_mbps;
            self.rate_mbps += raw.clamp(-bound, bound);
        }
        self.x_prev_ms = x_curr;
        self.rate_mbps = self.rate_mbps.clamp(RMIN_MBPS, RMAX_MBPS);
        guard::in_range(
            "transport",
            "nada-rate-bounds",
            self.rate_mbps,
            RMIN_MBPS,
            RMAX_MBPS,
            0.0,
            t,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_up_on_an_uncongested_path() {
        let mut nada = Nada::new(10.0);
        let mut t = 0.0;
        for _ in 0..20 {
            nada.on_feedback(t, 0.0, 20.0);
            t += DELTA_MS / 1e3;
        }
        assert!(
            nada.rate_mbps() > 50.0,
            "20 clean intervals must grow 10 Mbps several-fold, got {}",
            nada.rate_mbps()
        );
    }

    #[test]
    fn ramp_up_gain_is_bounded() {
        let mut nada = Nada::new(100.0);
        nada.on_feedback(0.0, 0.0, 20.0);
        let max_gain = 1.0 + GAMMA_MAX;
        assert!(
            nada.rate_mbps() <= 100.0 * max_gain + 1e-9,
            "one interval's ramp-up exceeds γ_max: {}",
            nada.rate_mbps()
        );
    }

    #[test]
    fn backs_off_under_queueing_delay() {
        let mut nada = Nada::new(2000.0);
        let mut t = 0.0;
        for _ in 0..30 {
            nada.on_feedback(t, 80.0, 20.0);
            t += DELTA_MS / 1e3;
        }
        assert!(
            nada.rate_mbps() < 2000.0,
            "sustained 80 ms queueing must cut the rate, got {}",
            nada.rate_mbps()
        );
    }

    #[test]
    fn rate_stays_within_rmin_rmax() {
        // Drive both directions hard and check the clamps hold.
        let mut down = Nada::new(RMIN_MBPS);
        let mut up = Nada::new(RMAX_MBPS);
        let mut t = 0.0;
        for _ in 0..100 {
            down.on_loss_ratio_sample(0.5);
            down.on_feedback(t, 500.0, 20.0);
            assert!(
                (RMIN_MBPS..=RMAX_MBPS).contains(&down.rate_mbps()),
                "rate escaped the clamp: {}",
                down.rate_mbps()
            );
            up.on_feedback(t, 0.0, 20.0);
            t += DELTA_MS / 1e3;
        }
        // Brutal congestion (50% loss, 500 ms queues) pins the rate near
        // the floor; a clean path pins it at the ceiling.
        assert!(down.rate_mbps() < 10.0, "floor: {}", down.rate_mbps());
        assert_eq!(up.rate_mbps(), RMAX_MBPS);
    }

    #[test]
    fn loss_enters_the_signal_quadratically() {
        let mut nada = Nada::new(100.0);
        for _ in 0..1000 {
            nada.on_loss_ratio_sample(PLR_REF);
        }
        // p_loss → PLR_REF, so the loss term → DLOSS_REF exactly.
        let x = nada.aggregate_signal_ms(0.0);
        assert!((x - DLOSS_REF_MS).abs() < 0.1, "{x}");
        // Double the loss ratio → 4× the penalty.
        let mut nada2 = Nada::new(100.0);
        for _ in 0..1000 {
            nada2.on_loss_ratio_sample(2.0 * PLR_REF);
        }
        let x2 = nada2.aggregate_signal_ms(0.0);
        assert!((x2 - 4.0 * DLOSS_REF_MS).abs() < 0.4, "{x2}");
    }

    #[test]
    fn sub_interval_feedback_is_absorbed() {
        let mut nada = Nada::new(100.0);
        nada.on_feedback(0.0, 0.0, 20.0);
        let after_first = nada.rate_mbps();
        // 10 ms later — less than DELTA — must not move the rate.
        nada.on_feedback(0.010, 0.0, 20.0);
        assert_eq!(nada.rate_mbps(), after_first);
        // A full interval later it moves again.
        nada.on_feedback(0.0 + DELTA_MS / 1e3, 0.0, 20.0);
        assert!(nada.rate_mbps() > after_first);
    }
}
