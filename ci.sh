#!/usr/bin/env bash
# Offline CI for the fiveg-wild workspace.
#
# Runs the tier-1 verification (release build + full test suite) plus the
# clippy lint gate. Everything here works with zero network access: the
# workspace has no external dependencies (see the note in Cargo.toml), so
# `--offline` is enforced to catch any accidental registry dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> lint: cargo fmt --check"
cargo fmt --check

# --- Chaos smoke matrix -----------------------------------------------------
# Run a small campaign under every non-quiet fault scenario, against the
# experiments that exercise that scenario's layer. `--check-manifest` is the
# gate: it exits non-zero if the manifest is malformed or any experiment
# degraded. Each scenario must also record at least one recovery action.
FIG=./target/release/figures
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

smoke() {
    local sc=$1; shift
    local dir="$SMOKE_DIR/$sc"
    echo "==> chaos smoke: $sc ($*)"
    "$FIG" --seed 2021 --chaos "$sc" --out "$dir" "$@" > /dev/null
    "$FIG" --check-manifest "$dir/manifest.json"
    local events
    events=$("$FIG" --check-manifest "$dir/manifest.json" | grep -o '[0-9]* recovery events' | cut -d' ' -f1)
    if [ "$events" -eq 0 ]; then
        echo "error: scenario $sc recorded no recovery actions" >&2
        exit 1
    fi
}

smoke blockage-storm        fig9 fig17
smoke dead-zone-drive       fig9
smoke rrc-flaky             fig10
smoke transport-turbulence  fig8 fig17 fig19 bonded-uplink
smoke power-glitch          table2
smoke chaos                 table2 fig9 fig10

# Double-run determinism: the same chaos campaign, run twice, must produce
# byte-identical manifests (and so identical hashes).
echo "==> chaos smoke: double-run determinism"
"$FIG" --seed 2021 --chaos chaos --out "$SMOKE_DIR/det-a" table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/chaos/manifest.json" "$SMOKE_DIR/det-a/manifest.json"

# Resume determinism: a campaign continued with --resume finishes with the
# same manifest bytes as an uninterrupted one.
echo "==> chaos smoke: resume determinism"
"$FIG" --seed 2021 --chaos chaos --out "$SMOKE_DIR/det-b" table2 > /dev/null
"$FIG" --seed 2021 --chaos chaos --out "$SMOKE_DIR/det-b" --resume table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/chaos/manifest.json" "$SMOKE_DIR/det-b/manifest.json"

# --- Parallel determinism ----------------------------------------------------
# The scheduler contract: `--jobs 4` must produce a manifest byte-identical
# to `--jobs 1`, quiet and under chaos. `cmp` is the hash compare — any
# reordering, seed drift, or shared-RNG leak between workers fails the gate.
echo "==> parallel determinism: quiet, --jobs 1 vs --jobs 4"
"$FIG" --seed 2021 --jobs 1 --out "$SMOKE_DIR/par-s" table1 fig1 fig2 fig9 table2 fig11 > /dev/null
"$FIG" --seed 2021 --jobs 4 --out "$SMOKE_DIR/par-j" table1 fig1 fig2 fig9 table2 fig11 > /dev/null
cmp "$SMOKE_DIR/par-s/manifest.json" "$SMOKE_DIR/par-j/manifest.json"

# The paper-fidelity gate on subset dirs: expectations whose artifact is
# absent are skipped, so a partial campaign still validates — and the
# validation.txt written for the serial and parallel runs must be
# byte-identical.
echo "==> validation gate: serial vs --jobs 4 subset dirs"
"$FIG" --validate "$SMOKE_DIR/par-s" > /dev/null
"$FIG" --validate "$SMOKE_DIR/par-j" > /dev/null
cmp "$SMOKE_DIR/par-s/validation.txt" "$SMOKE_DIR/par-j/validation.txt"

echo "==> parallel determinism: chaos, --jobs 1 vs --jobs 4"
"$FIG" --seed 2021 --chaos chaos --jobs 1 --out "$SMOKE_DIR/par-cs" table2 fig9 fig10 > /dev/null
"$FIG" --seed 2021 --chaos chaos --jobs 4 --out "$SMOKE_DIR/par-cj" table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/par-cs/manifest.json" "$SMOKE_DIR/par-cj/manifest.json"

# Resume + jobs: rows resumed from a partial campaign are skipped before the
# work queue is built, and the finished manifest still matches serial bytes.
echo "==> parallel determinism: --resume with --jobs 4"
"$FIG" --seed 2021 --jobs 1 --out "$SMOKE_DIR/par-r" table1 fig1 > /dev/null
"$FIG" --seed 2021 --jobs 4 --out "$SMOKE_DIR/par-r" --resume table1 fig1 fig2 fig9 table2 fig11 > /dev/null
cmp "$SMOKE_DIR/par-s/manifest.json" "$SMOKE_DIR/par-r/manifest.json"

# --- Intra-experiment sharding -------------------------------------------------
# Shard fan-out is a scheduling decision, never a semantics decision: the
# sharded experiments (fig15/fig16/fig17/fig18*/ablation-pensieve/
# bonded-uplink) must render byte-identical artifacts serially, on a
# --jobs 4 pool (where each shard is its own work unit), and with fan-out
# disabled (--no-shard).
SHARD_IDS="fig15 fig16 fig18c bonded-uplink"
echo "==> shard plane: --jobs 1 vs --jobs 4 vs --no-shard"
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 1 --out "$SMOKE_DIR/shard-s" $SHARD_IDS > /dev/null
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 4 --out "$SMOKE_DIR/shard-j" $SHARD_IDS > /dev/null
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 4 --no-shard --out "$SMOKE_DIR/shard-n" $SHARD_IDS > /dev/null
cmp "$SMOKE_DIR/shard-s/manifest.json" "$SMOKE_DIR/shard-j/manifest.json"
cmp "$SMOKE_DIR/shard-s/manifest.json" "$SMOKE_DIR/shard-n/manifest.json"
for f in "$SMOKE_DIR"/shard-s/*.txt; do
    cmp "$f" "$SMOKE_DIR/shard-j/$(basename "$f")"
    cmp "$f" "$SMOKE_DIR/shard-n/$(basename "$f")"
done

# Same contract under chaos: per-shard fault worlds are keyed by
# (attempt seed, id, shard) — never by which worker ran the shard when.
echo "==> shard plane: chaos byte-identity"
"$FIG" --seed 2021 --chaos chaos --jobs 4 --out "$SMOKE_DIR/shard-ca" fig17 fig18c bonded-uplink > /dev/null
"$FIG" --seed 2021 --chaos chaos --jobs 1 --no-shard --out "$SMOKE_DIR/shard-cb" fig17 fig18c bonded-uplink > /dev/null
cmp "$SMOKE_DIR/shard-ca/manifest.json" "$SMOKE_DIR/shard-cb/manifest.json"
# Double-run determinism for the bonded family specifically, quiet and
# chaos: the same campaign twice must render identical artifact bytes.
echo "==> shard plane: bonded-uplink double-run determinism"
"$FIG" --seed 2021 --chaos chaos --jobs 4 --out "$SMOKE_DIR/shard-ca2" fig17 fig18c bonded-uplink > /dev/null
cmp "$SMOKE_DIR/shard-ca/bonded-uplink.txt" "$SMOKE_DIR/shard-ca2/bonded-uplink.txt"
"$FIG" --seed 2021 --out "$SMOKE_DIR/bond-q1" bonded-uplink > /dev/null
"$FIG" --seed 2021 --out "$SMOKE_DIR/bond-q2" bonded-uplink > /dev/null
cmp "$SMOKE_DIR/bond-q1/bonded-uplink.txt" "$SMOKE_DIR/bond-q2/bonded-uplink.txt"

# --profile must render the hot-spot table (campaign wall ranking plus the
# heaviest telemetry spans) without touching the artifacts.
echo "==> shard plane: --profile smoke"
"$FIG" --seed 2021 --profile --out "$SMOKE_DIR/shard-p" fig16 table9 > "$SMOKE_DIR/profile.out"
grep -q '==== PROFILE' "$SMOKE_DIR/profile.out"
grep -q 'fig16' "$SMOKE_DIR/profile.out"
"$FIG" --seed 2021 --out "$SMOKE_DIR/shard-p2" fig16 table9 > /dev/null
cmp "$SMOKE_DIR/shard-p2/manifest.json" "$SMOKE_DIR/shard-p/manifest.json"

# --- Cancellation plane --------------------------------------------------------
# Disarmed-path determinism: the cooperative cancel token must never touch
# simulation state, so a campaign with the plane off (`--no-cancel`, the
# legacy abandon-on-deadline behavior) renders byte-identical manifests,
# quiet and under chaos.
echo "==> cancel plane: --no-cancel byte-identity"
"$FIG" --seed 2021 --no-cancel --out "$SMOKE_DIR/nocancel" table1 fig1 fig2 fig9 table2 fig11 > /dev/null
cmp "$SMOKE_DIR/par-s/manifest.json" "$SMOKE_DIR/nocancel/manifest.json"
"$FIG" --seed 2021 --chaos chaos --no-cancel --out "$SMOKE_DIR/nocancel-chaos" table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/chaos/manifest.json" "$SMOKE_DIR/nocancel-chaos/manifest.json"

# Interrupt safety: SIGINT a campaign mid-flight; the binary must stop
# claiming work, cancel the in-flight attempt cooperatively, flush a
# parseable manifest, and exit 130. `--resume` then finishes the campaign
# and every artifact must be byte-identical to an uninterrupted run.
echo "==> interrupt safety: SIGINT mid-campaign, then --resume"
INT_IDS="fig3 fig4 fig6 fig7 fig16 fig17"
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 1 --out "$SMOKE_DIR/int-ref" $INT_IDS > /dev/null
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 1 --out "$SMOKE_DIR/int" $INT_IDS > /dev/null 2> "$SMOKE_DIR/int.err" &
fig_pid=$!
sleep 1.5
kill -INT "$fig_pid"
rc=0; wait "$fig_pid" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "error: interrupted campaign exited $rc, expected 130" >&2
    cat "$SMOKE_DIR/int.err" >&2
    exit 1
fi
# The kill landed mid-campaign: the flushed manifest must parse but be
# incomplete (different bytes than the finished reference).
if cmp -s "$SMOKE_DIR/int-ref/manifest.json" "$SMOKE_DIR/int/manifest.json"; then
    echo "error: SIGINT landed after the campaign finished — gate proved nothing" >&2
    exit 1
fi
# An in-flight row cancelled at kill time is recorded `interrupted`, and
# --check-manifest must then refuse the manifest as incomplete.
if grep -q '"status":"interrupted"' "$SMOKE_DIR/int/manifest.json"; then
    if "$FIG" --check-manifest "$SMOKE_DIR/int/manifest.json" > /dev/null 2>&1; then
        echo "error: --check-manifest accepted an interrupted manifest" >&2
        exit 1
    fi
fi
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 1 --out "$SMOKE_DIR/int" --resume $INT_IDS > /dev/null
cmp "$SMOKE_DIR/int-ref/manifest.json" "$SMOKE_DIR/int/manifest.json"
for f in "$SMOKE_DIR"/int-ref/*.txt; do
    cmp "$f" "$SMOKE_DIR/int/$(basename "$f")"
done

# --- Telemetry smoke -----------------------------------------------------------
# The observability plane: per-experiment JSONL/Chrome-trace files must be
# non-empty, deterministic across reruns, and identical serial vs --jobs 4
# (they carry only simulated time). telemetry.txt is excluded — its runner
# section is wall-clock by design.
echo "==> telemetry smoke: figures --telemetry"
"$FIG" --seed 2021 --telemetry "$SMOKE_DIR/tel-a" --out "$SMOKE_DIR/telo-a" table2 fig9 > /dev/null
for id in table2 fig9; do
    test -s "$SMOKE_DIR/tel-a/$id.jsonl"
    test -s "$SMOKE_DIR/tel-a/$id.trace.json"
done
grep -q '"name":"radio/drive"' "$SMOKE_DIR/tel-a/fig9.jsonl"
grep -q '"name":"power/record"' "$SMOKE_DIR/tel-a/table2.jsonl"
grep -q '"name":"rrc/promotion"' "$SMOKE_DIR/tel-a/table2.jsonl"
test -s "$SMOKE_DIR/tel-a/telemetry.txt"

echo "==> telemetry determinism: double run"
"$FIG" --seed 2021 --telemetry "$SMOKE_DIR/tel-b" --out "$SMOKE_DIR/telo-b" table2 fig9 > /dev/null
for id in table2 fig9; do
    cmp "$SMOKE_DIR/tel-a/$id.jsonl" "$SMOKE_DIR/tel-b/$id.jsonl"
    cmp "$SMOKE_DIR/tel-a/$id.trace.json" "$SMOKE_DIR/tel-b/$id.trace.json"
done

echo "==> telemetry determinism: --jobs 4"
"$FIG" --seed 2021 --jobs 4 --telemetry "$SMOKE_DIR/tel-j" --out "$SMOKE_DIR/telo-j" table2 fig9 > /dev/null
for id in table2 fig9; do
    cmp "$SMOKE_DIR/tel-a/$id.jsonl" "$SMOKE_DIR/tel-j/$id.jsonl"
    cmp "$SMOKE_DIR/tel-a/$id.trace.json" "$SMOKE_DIR/tel-j/$id.trace.json"
done

# Observing must not change the world: the campaign run with the collector
# installed renders the same manifest and reports as one without it.
echo "==> telemetry off-path: manifest unchanged by --telemetry"
"$FIG" --seed 2021 --out "$SMOKE_DIR/telo-plain" table2 fig9 > /dev/null
cmp "$SMOKE_DIR/telo-plain/manifest.json" "$SMOKE_DIR/telo-a/manifest.json"
for id in table2 fig9; do
    cmp "$SMOKE_DIR/telo-plain/$id.txt" "$SMOKE_DIR/telo-a/$id.txt"
done

# Feature-off determinism: a binary built without the telemetry feature
# compiled in at all must produce byte-identical campaign output.
echo "==> telemetry feature gate: --no-default-features build"
cargo build --release --offline -p fiveg-bench --no-default-features
"$FIG" --seed 2021 --out "$SMOKE_DIR/telo-nofeat" table2 fig9 > /dev/null
cmp "$SMOKE_DIR/telo-plain/manifest.json" "$SMOKE_DIR/telo-nofeat/manifest.json"
for id in table2 fig9; do
    cmp "$SMOKE_DIR/telo-plain/$id.txt" "$SMOKE_DIR/telo-nofeat/$id.txt"
done
# Restore the default (telemetry-enabled) binary for anything downstream.
cargo build --release --offline -p fiveg-bench

# --- Guard plane & stress harness ---------------------------------------------
# Guards-off feature gate: a binary with the telemetry plane still on but
# the `guards` feature compiled out must render byte-identical campaign
# output — isolating the guard hooks specifically (the nofeat gate above
# drops both planes at once).
echo "==> guard feature gate: --no-default-features --features telemetry build"
cargo build --release --offline -p fiveg-bench --no-default-features --features telemetry
"$FIG" --seed 2021 --out "$SMOKE_DIR/guard-off" table2 fig9 > /dev/null
cmp "$SMOKE_DIR/telo-plain/manifest.json" "$SMOKE_DIR/guard-off/manifest.json"
for id in table2 fig9; do
    cmp "$SMOKE_DIR/telo-plain/$id.txt" "$SMOKE_DIR/guard-off/$id.txt"
done
cargo build --release --offline -p fiveg-bench

# --- Campaign observatory ------------------------------------------------------
# `--obs` artifacts carry sim-time facts only: metrics.json, observatory.txt,
# and the collapsed-stack flamegraphs must be byte-identical across reruns,
# across --jobs 4, and with shard fan-out disabled — quiet and under chaos.
# fig18c keeps a sharded experiment in the matrix.
OBS_IDS="table2 fig9 fig18c"
echo "==> observatory: quiet byte-identity (rerun, --jobs 4, --no-shard)"
# shellcheck disable=SC2086
"$FIG" --seed 2021 --obs "$SMOKE_DIR/obs-a" --out "$SMOKE_DIR/obso-a" $OBS_IDS > /dev/null
# shellcheck disable=SC2086
"$FIG" --seed 2021 --obs "$SMOKE_DIR/obs-b" --out "$SMOKE_DIR/obso-b" $OBS_IDS > /dev/null
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 4 --obs "$SMOKE_DIR/obs-j" --out "$SMOKE_DIR/obso-j" $OBS_IDS > /dev/null
# shellcheck disable=SC2086
"$FIG" --seed 2021 --jobs 4 --no-shard --obs "$SMOKE_DIR/obs-n" --out "$SMOKE_DIR/obso-n" $OBS_IDS > /dev/null
for f in metrics.json observatory.txt campaign.folded table2.folded fig9.folded fig18c.folded; do
    cmp "$SMOKE_DIR/obs-a/$f" "$SMOKE_DIR/obs-b/$f"
    cmp "$SMOKE_DIR/obs-a/$f" "$SMOKE_DIR/obs-j/$f"
    cmp "$SMOKE_DIR/obs-a/$f" "$SMOKE_DIR/obs-n/$f"
done
grep -q '"schema":"obs-v1"' "$SMOKE_DIR/obs-a/metrics.json"
grep -q '^radio/drive' "$SMOKE_DIR/obs-a/fig9.folded"

# Observing must not change the world: the campaign run with --obs renders
# the same manifest as one without it.
# shellcheck disable=SC2086
"$FIG" --seed 2021 --out "$SMOKE_DIR/obso-plain" $OBS_IDS > /dev/null
cmp "$SMOKE_DIR/obso-plain/manifest.json" "$SMOKE_DIR/obso-a/manifest.json"

echo "==> observatory: chaos byte-identity"
"$FIG" --seed 2021 --chaos chaos --obs "$SMOKE_DIR/obs-ca" --out "$SMOKE_DIR/obso-ca" table2 fig9 fig10 > /dev/null
"$FIG" --seed 2021 --chaos chaos --jobs 4 --obs "$SMOKE_DIR/obs-cj" --out "$SMOKE_DIR/obso-cj" table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/obs-ca/metrics.json" "$SMOKE_DIR/obs-cj/metrics.json"
cmp "$SMOKE_DIR/obs-ca/campaign.folded" "$SMOKE_DIR/obs-cj/campaign.folded"

# Self-diff discipline: a store diffed against an identical rerun reports
# zero drift even under --obs-strict …
echo "==> observatory: self-diff is empty"
"$FIG" --obs-strict --obs-diff "$SMOKE_DIR/obs-a" "$SMOKE_DIR/obs-b" > /dev/null

# … while a genuinely different campaign (chaos vs quiet, different id set)
# must breach the fail band and exit non-zero under strict.
if "$FIG" --obs-strict --obs-diff "$SMOKE_DIR/obs-a" "$SMOKE_DIR/obs-ca" > /dev/null 2>&1; then
    echo "error: --obs-strict accepted chaos-vs-quiet telemetry drift" >&2
    exit 1
fi

# Stress smoke: a fixed quiet sweep must pass with zero failures (exit 0),
# and the summary table must be byte-identical across a rerun with a
# different worker count (stress.txt carries sim-side facts only).
echo "==> stress smoke: quiet sweep, fixed seed"
"$FIG" --stress 6 --stress-seed 2021 --stress-scenario quiet --jobs 4 \
    --out "$SMOKE_DIR/stress-a" > /dev/null
"$FIG" --stress 6 --stress-seed 2021 --stress-scenario quiet --jobs 2 \
    --out "$SMOKE_DIR/stress-b" > /dev/null
cmp "$SMOKE_DIR/stress-a/stress/stress.txt" "$SMOKE_DIR/stress-b/stress/stress.txt"

# Canary smoke: the find→shrink→replay loop end to end. A deliberately
# broken invariant must fail the sweep (exit 1), produce a reproducer,
# and that reproducer must replay to the identical violation (exit 0).
echo "==> stress smoke: canary find, shrink, replay"
if "$FIG" --stress 1 --stress-seed 7 --stress-canary \
    --out "$SMOKE_DIR/stress-c" > /dev/null 2>&1; then
    echo "error: canary sweep exited 0 — broken invariant not detected" >&2
    exit 1
fi
repro=$(ls "$SMOKE_DIR"/stress-c/stress/repro-c0-*.json)
grep -q '"verdict":"guard-violation"' "$repro"
"$FIG" --repro "$repro" > /dev/null

# Strict gate: a healthy campaign under --strict still exits 0.
echo "==> strict gate: healthy campaign"
"$FIG" --seed 2021 --strict --out "$SMOKE_DIR/strict-ok" table2 > /dev/null

# --- Campaign perf baseline ---------------------------------------------------
# Record the full-campaign wall clock and events/sec on all cores into
# results/BENCH_campaign.json (kept out of manifest.json so manifests stay
# byte-comparable across machines). The same run renders the full quiet
# campaign for the paper-fidelity gate below.
#
# Each timed sample is first compared against the *committed* baseline via
# --bench-baseline: a per-experiment wall-clock regression beyond the
# tolerance (2x and +0.25 s) prints a warning. Warn-only here — wall
# clocks are machine-dependent — but FIVEG_BENCH_STRICT=1 adds
# --bench-strict, turning regressions into a hard CI failure (exit 1) for
# perf-sensitive checkouts. FIVEG_BENCH_SAMPLES=N repeats the timed
# campaign N times to smooth scheduler noise; the last sample is recorded.
SAMPLES="${FIVEG_BENCH_SAMPLES:-1}"
STRICT_FLAG=""
if [ "${FIVEG_BENCH_STRICT:-0}" != "0" ]; then
    STRICT_FLAG="--bench-strict"
fi
for i in $(seq 1 "$SAMPLES"); do
    echo "==> perf baseline: sample $i/$SAMPLES (figures all --bench-out)"
    # shellcheck disable=SC2086
    "$FIG" --seed 2021 --out "$SMOKE_DIR/quiet-all" --bench-out "$SMOKE_DIR/bench-$i.json" \
        --bench-baseline results/BENCH_campaign.json $STRICT_FLAG all > /dev/null
done
cp "$SMOKE_DIR/bench-$SAMPLES.json" results/BENCH_campaign.json
grep -o '"speedup_est":[0-9.]*' results/BENCH_campaign.json

# The sharded fig15 must charge budget events now that the walking loops
# and mlkit training are metered — zero means the accounting regressed.
fig15_events=$(grep -o '"id":"fig15"[^}]*' results/BENCH_campaign.json | grep -o '"events":[0-9]*' | head -1 | cut -d: -f2)
if [ -z "${fig15_events:-}" ] || [ "$fig15_events" -eq 0 ]; then
    echo "error: fig15 recorded zero budget events in BENCH_campaign.json" >&2
    exit 1
fi

# The freshly regenerated baseline must accept the manifest it was derived
# from under --check-strict (seed, scenario, statuses, and recovery-event
# counts all within the tolerance bands).
echo "==> manifest gate: --check-strict against the fresh perf baseline"
"$FIG" --check-strict --check-manifest "$SMOKE_DIR/quiet-all/manifest.json" > /dev/null

# --- Observatory baseline ------------------------------------------------------
# The full quiet campaign's telemetry rollup must sit inside the tolerance
# bands of the committed observatory baseline. Run separately from the
# timed perf samples above so --obs never skews the wall clocks.
echo "==> observatory gate: full campaign vs results/OBS_baseline.json"
"$FIG" --seed 2021 --obs "$SMOKE_DIR/obs-full" --out "$SMOKE_DIR/obs-full-out" all > /dev/null
"$FIG" --obs-strict --obs-diff results/OBS_baseline.json "$SMOKE_DIR/obs-full"

# --- Paper-fidelity gate -------------------------------------------------------
# Every artifact the quiet campaign just rendered must sit inside its
# tolerance band from the expected-value table (bench::expect); any FAIL
# exits non-zero. The committed goldens must pass too, and the rerun must
# leave results/validation.txt byte-identical (the report is a pure
# function of the artifacts).
echo "==> validation gate: quiet campaign"
"$FIG" --validate "$SMOKE_DIR/quiet-all"

echo "==> validation gate: committed goldens"
cp results/validation.txt "$SMOKE_DIR/validation.before"
"$FIG" --validate results > /dev/null
cmp results/validation.txt "$SMOKE_DIR/validation.before"

echo "==> ci: all green"
