#!/usr/bin/env bash
# Offline CI for the fiveg-wild workspace.
#
# Runs the tier-1 verification (release build + full test suite) plus the
# clippy lint gate. Everything here works with zero network access: the
# workspace has no external dependencies (see the note in Cargo.toml), so
# `--offline` is enforced to catch any accidental registry dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> ci: all green"
