#!/usr/bin/env bash
# Offline CI for the fiveg-wild workspace.
#
# Runs the tier-1 verification (release build + full test suite) plus the
# clippy lint gate. Everything here works with zero network access: the
# workspace has no external dependencies (see the note in Cargo.toml), so
# `--offline` is enforced to catch any accidental registry dependency.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test -q"
cargo test -q --offline

echo "==> lint: cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# --- Chaos smoke matrix -----------------------------------------------------
# Run a small campaign under every non-quiet fault scenario, against the
# experiments that exercise that scenario's layer. `--check-manifest` is the
# gate: it exits non-zero if the manifest is malformed or any experiment
# degraded. Each scenario must also record at least one recovery action.
FIG=./target/release/figures
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

smoke() {
    local sc=$1; shift
    local dir="$SMOKE_DIR/$sc"
    echo "==> chaos smoke: $sc ($*)"
    "$FIG" --seed 2021 --chaos "$sc" --out "$dir" "$@" > /dev/null
    "$FIG" --check-manifest "$dir/manifest.json"
    local events
    events=$("$FIG" --check-manifest "$dir/manifest.json" | grep -o '[0-9]* recovery events' | cut -d' ' -f1)
    if [ "$events" -eq 0 ]; then
        echo "error: scenario $sc recorded no recovery actions" >&2
        exit 1
    fi
}

smoke blockage-storm        fig9 fig17
smoke dead-zone-drive       fig9
smoke rrc-flaky             fig10
smoke transport-turbulence  fig8 fig17 fig19
smoke power-glitch          table2
smoke chaos                 table2 fig9 fig10

# Double-run determinism: the same chaos campaign, run twice, must produce
# byte-identical manifests (and so identical hashes).
echo "==> chaos smoke: double-run determinism"
"$FIG" --seed 2021 --chaos chaos --out "$SMOKE_DIR/det-a" table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/chaos/manifest.json" "$SMOKE_DIR/det-a/manifest.json"

# Resume determinism: a campaign continued with --resume finishes with the
# same manifest bytes as an uninterrupted one.
echo "==> chaos smoke: resume determinism"
"$FIG" --seed 2021 --chaos chaos --out "$SMOKE_DIR/det-b" table2 > /dev/null
"$FIG" --seed 2021 --chaos chaos --out "$SMOKE_DIR/det-b" --resume table2 fig9 fig10 > /dev/null
cmp "$SMOKE_DIR/chaos/manifest.json" "$SMOKE_DIR/det-b/manifest.json"

echo "==> ci: all green"
