//! The Fig 9 drive test: handoffs across five band configurations.
//!
//! Drives the 10 km route through the simulated T-Mobile corridor under
//! each band setting and prints the handoff counts and a radio timeline
//! strip per configuration.
//!
//! ```sh
//! cargo run --release --example drive_test
//! ```

use fiveg_wild::geo::mobility::MobilityModel;
use fiveg_wild::probes::drivetest::summarize;
use fiveg_wild::radio::cell::NetworkLayout;
use fiveg_wild::radio::handoff::{simulate_drive, ActiveRadio, BandSetting, HandoffConfig};

fn main() {
    let layout = NetworkLayout::tmobile_drive_corridor(42);
    let mobility = MobilityModel::driving_10km();
    let cfg = HandoffConfig::default();

    for setting in BandSetting::all() {
        let result = simulate_drive(&layout, &mobility, setting, &cfg, 42);
        let s = summarize(&result);
        println!(
            "{:<14} total={:<4} vertical={:<4} horizontal={:<3}",
            setting.label(),
            s.total,
            s.vertical,
            s.horizontal
        );
        // A 60-column timeline strip: L = LTE, N = NSA-NR, S = SA-NR.
        let duration = mobility.duration_s();
        let strip: String = (0..60)
            .map(|i| {
                let t = duration * i as f64 / 60.0;
                let at = result
                    .timeline
                    .iter()
                    .rev()
                    .find(|(ts, _)| *ts <= t)
                    .and_then(|(_, r)| *r);
                match at {
                    Some(ActiveRadio::Lte) => 'L',
                    Some(ActiveRadio::NsaNr) => 'N',
                    Some(ActiveRadio::SaNr) => 'S',
                    None => '.',
                }
            })
            .collect();
        println!("  [{strip}]");
    }
    println!("\nSA needs the fewest handoffs; NSA pays for its LTE anchor with");
    println!("constant vertical 4G/5G churn (§3.3).");
}
