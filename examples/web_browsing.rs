//! Web browsing over 4G vs mmWave 5G, and decision-tree radio selection (§6).
//!
//! Loads a synthetic top-sites corpus over both radios, prints the
//! performance/energy trade-off, then trains the Table 6 selection models
//! and shows their routing decisions and tree structure.
//!
//! ```sh
//! cargo run --release --example web_browsing
//! ```

use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::simcore::stats::mean;
use fiveg_wild::web::ifselect::{measure_corpus, ModelSpec, SelectionModel};
use fiveg_wild::web::loader::PageLoader;
use fiveg_wild::web::site::WebsiteCorpus;

fn main() {
    let corpus = WebsiteCorpus::generate(900, 11);
    let loader = PageLoader::new(UeModel::Pixel5, 11);
    let mut measurements = measure_corpus(&corpus, &loader, 6);

    let plt4 = mean(&measurements.iter().map(|m| m.lte.plt_s).collect::<Vec<_>>());
    let plt5 = mean(
        &measurements
            .iter()
            .map(|m| m.mmwave.plt_s)
            .collect::<Vec<_>>(),
    );
    let e4 = mean(
        &measurements
            .iter()
            .map(|m| m.lte.energy_j)
            .collect::<Vec<_>>(),
    );
    let e5 = mean(
        &measurements
            .iter()
            .map(|m| m.mmwave.energy_j)
            .collect::<Vec<_>>(),
    );
    println!("== corpus means over {} sites ==", corpus.sites.len());
    println!("  4G:  PLT {plt4:.2} s   energy {e4:.2} J");
    println!("  5G:  PLT {plt5:.2} s   energy {e5:.2} J");
    println!(
        "  5G is {:.0}% faster but costs {:.1}x the energy\n",
        (1.0 - plt5 / plt4) * 100.0,
        e5 / e4
    );

    let test = measurements.split_off(measurements.len() * 7 / 10);
    println!(
        "== Table 6: DT interface selection on {} test sites ==",
        test.len()
    );
    for spec in ModelSpec::table6() {
        let model = SelectionModel::train(&measurements, spec, 1);
        let counts = model.evaluate(&test);
        let (saving, penalty) = model.savings_vs_5g(&test);
        println!(
            "  {} ({:<20}) use4G={:<3} use5G={:<3} | energy -{:.0}%, PLT +{:.0}%",
            spec.id,
            spec.desired,
            counts.use_4g,
            counts.use_5g,
            saving * 100.0,
            penalty * 100.0
        );
        let splits = model.splits();
        if !splits.is_empty() {
            let desc: Vec<String> = splits
                .iter()
                .map(|s| format!("{} < {:.2}", s.feature, s.threshold))
                .collect();
            println!("      tree: {}", desc.join("; "));
        }
    }
}
