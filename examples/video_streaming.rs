//! DASH streaming over a generated mmWave 5G trace (§5).
//!
//! Streams the paper's 160 Mbps-top ladder over one Lumos5G-style trace
//! with three ABR algorithms, then shows the 5G-aware interface-selection
//! policy riding out fades on 4G.
//!
//! ```sh
//! cargo run --release --example video_streaming
//! ```

use fiveg_wild::traces::lumos::TraceGenerator;
use fiveg_wild::video::abr::{Bba, Mpc};
use fiveg_wild::video::asset::VideoAsset;
use fiveg_wild::video::ifselect::{stream_with_selection, IfSelectConfig};
use fiveg_wild::video::player::{stream, PlayerConfig};

fn main() {
    let gen = TraceGenerator::new(7);
    let trace_5g = gen.lumos5g_trace(3);
    let trace_4g = gen.lte_trace(3);
    let asset = VideoAsset::five_g_default();
    let cfg = PlayerConfig::default();

    println!(
        "trace: mean {:.0} Mbps over {:.0} s; ladder top {:.0} Mbps, {} tracks, {}s chunks",
        trace_5g.mean_mbps(),
        trace_5g.duration_s(),
        asset.top_bitrate(),
        asset.n_tracks(),
        asset.chunk_len_s,
    );

    println!("\n== ABR comparison on the 5G trace ==");
    let sessions: Vec<(&str, _)> = vec![
        (
            "BBA",
            stream(&asset, &trace_5g, &mut Bba::default(), &cfg, 0.0),
        ),
        (
            "fastMPC",
            stream(&asset, &trace_5g, &mut Mpc::fast(), &cfg, 0.0),
        ),
        (
            "robustMPC",
            stream(&asset, &trace_5g, &mut Mpc::robust(), &cfg, 0.0),
        ),
    ];
    for (name, r) in &sessions {
        println!(
            "  {:<10} bitrate {:.2}  stall {:>5.1}% ({:>5.1} s)  switches {}",
            name,
            r.avg_norm_bitrate,
            r.stall_pct(),
            r.stall_time_s,
            r.switches
        );
    }

    println!("\n== 5G-aware interface selection (fastMPC base) ==");
    for (name, cfg_sel) in [
        ("5G-only", IfSelectConfig::five_g_only()),
        ("5G-aware", IfSelectConfig::aware(trace_4g.mean_mbps())),
    ] {
        let r = stream_with_selection(
            &asset,
            &trace_5g,
            &trace_4g,
            &mut Mpc::fast(),
            &cfg_sel,
            &cfg,
        );
        println!(
            "  {:<9} stall {:>5.1} s  energy {:>5.0} J  on-5G {:>4.0}%  switches {}",
            name,
            r.session.stall_time_s,
            r.energy_j,
            r.on_5g_fraction * 100.0,
            r.iface_switches
        );
    }
}
