//! Quickstart: measure a simulated 5G connection the way the paper does.
//!
//! Builds a stationary mmWave UE in Minneapolis, runs Speedtest-style
//! latency and throughput tests against the carrier's local and a far
//! server, and prints the §3 takeaways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fiveg_wild::geo::servers::{carrier_pool, default_ue_location, Carrier};
use fiveg_wild::probes::speedtest::{ConnMode, SpeedtestHarness};
use fiveg_wild::radio::band::{Band, Direction};
use fiveg_wild::radio::link::LinkState;
use fiveg_wild::radio::ue::UeModel;

fn main() {
    // An S20U held stationary with clear LoS to a Verizon mmWave panel.
    let harness = SpeedtestHarness {
        ue: UeModel::GalaxyS20Ultra,
        link: LinkState {
            band: Band::N261,
            rsrp_dbm: -70.0,
            sa: false,
        },
        ue_location: default_ue_location(),
        seed: 42,
    };

    let ue = default_ue_location();
    let mut pool = carrier_pool(Carrier::Verizon);
    pool.sort_by(|a, b| {
        a.distance_km(ue)
            .partial_cmp(&b.distance_km(ue))
            .expect("finite")
    });
    let local = &pool[0];
    let far = pool.last().expect("non-empty");

    println!("== latency (best of 10 pings) ==");
    for s in [local, far] {
        println!(
            "  {:<28} {:>6.0} km  {:>6.1} ms",
            s.name,
            s.distance_km(ue),
            harness.latency_ms(s, 10)
        );
    }

    println!("\n== downlink throughput (p95 of repeated 15 s tests) ==");
    for (mode, label) in [
        (ConnMode::Multi, "multi-connection"),
        (ConnMode::SingleTuned, "single connection"),
    ] {
        for s in [local, far] {
            let r = harness.run(s, Direction::Downlink, mode, 5);
            println!("  {:<18} {:<28} {:>7.0} Mbps", label, s.name, r.p95_mbps);
        }
    }

    println!("\nTakeaways (§3.2): multi-connection saturates mmWave everywhere;");
    println!("a single connection decays with UE-server distance — the edge matters.");
}
