//! RRC-Probe: inferring a carrier's RRC timers without root (§4.1–4.2).
//!
//! Probes all six carrier configurations and prints the inferred Table 7
//! parameters next to the ground truth the simulated UEs obey.
//!
//! ```sh
//! cargo run --release --example rrc_probe
//! ```

use fiveg_wild::probes::rrcprobe::RrcProbe;
use fiveg_wild::rrc::profile::{RrcConfigId, RrcProfile};

fn main() {
    println!(
        "{:<27} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "config", "tail s (true)", "LTE-tail s", "longDRX ms", "4G promo", "5G promo"
    );
    for config in RrcConfigId::all() {
        let truth = RrcProfile::for_config(config);
        let got = RrcProbe::new(truth, 3.0, 7).infer();
        let opt = |v: Option<f64>, scale: f64| {
            v.map_or("N/A".to_string(), |x| format!("{:.1}", x / scale))
        };
        println!(
            "{:<27} {:>6.1} ({:.1}) {:>12} {:>10.0} {:>10} {:>10}",
            config.label(),
            got.tail_ms / 1e3,
            truth.tail_ms / 1e3,
            opt(got.lte_tail_ms, 1e3),
            got.long_drx_ms,
            opt(got.promo_4g_ms, 1.0),
            opt(got.promo_5g_ms, 1.0),
        );
    }
    println!("\nNSA timers mirror 4G (the control plane *is* 4G); SA adds the");
    println!("RRC_INACTIVE state and promotes in ~a third of a second (§4.2).");
}
