//! Building the throughput+signal-strength power model (§4.3–4.5).
//!
//! Runs a walking power campaign, trains the three Fig 15 model variants,
//! and prints their errors plus the Fig 11 crossover points.
//!
//! ```sh
//! cargo run --release --example power_modeling
//! ```

use fiveg_wild::mlkit::tree::{DecisionTreeRegressor, TreeConfig};
use fiveg_wild::power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_wild::power::efficiency::crossover_mbps;
use fiveg_wild::radio::band::Direction;
use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::simcore::stats::mape;
use fiveg_wild::simcore::RngStream;
use fiveg_wild::traces::walking::{to_dataset, PowerFeatures, WalkingCampaign};

fn main() {
    println!("== Fig 11 crossovers (S20U, calibrated ground truth) ==");
    let mm = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
    let lte = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::Lte);
    for (dir, label) in [
        (Direction::Downlink, "downlink"),
        (Direction::Uplink, "uplink"),
    ] {
        if let Some(x) = crossover_mbps(&lte.curve(dir), &mm.curve(dir)) {
            println!("  mmWave beats 4G above {x:.0} Mbps ({label})");
        }
    }

    println!("\n== Fig 15: power-model MAPE from a walking campaign ==");
    let campaign = WalkingCampaign::fig15_settings()[1]; // S20/VZ/NSA-HB
    let samples = campaign.campaign(10, 42);
    println!(
        "  campaign {} collected {} samples",
        campaign.label(),
        samples.len()
    );
    for features in [
        PowerFeatures::ThroughputAndSignal,
        PowerFeatures::ThroughputOnly,
        PowerFeatures::SignalOnly,
    ] {
        let data = to_dataset(&samples, campaign.network, features);
        let mut rng = RngStream::new(42, "split");
        let (train, test) = data.split(0.7, &mut rng);
        let model = DecisionTreeRegressor::fit(&train, &TreeConfig::default());
        let err = mape(&test.targets, &model.predict_all(&test));
        println!("  {:<6} features -> MAPE {err:.2}%", features.label());
    }
    println!("\nBoth throughput AND signal strength are needed (§4.5).");
}
