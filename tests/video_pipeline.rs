//! Integration of trace generation, ABR algorithms, predictors, and
//! interface selection: §5's streaming pipeline.

use fiveg_wild::simcore::stats::mean;
use fiveg_wild::traces::lumos::TraceGenerator;
use fiveg_wild::video::abr::Mpc;
use fiveg_wild::video::asset::VideoAsset;
use fiveg_wild::video::ifselect::{stream_with_selection, IfSelectConfig};
use fiveg_wild::video::player::{stream, PlayerConfig};
use fiveg_wild::video::predictor::OraclePredictor;

fn mean_stall_and_qoe(
    traces: &[fiveg_wild::transport::shaper::BandwidthTrace],
    mut make: impl FnMut(&fiveg_wild::transport::shaper::BandwidthTrace) -> Mpc,
) -> (f64, f64) {
    let asset = VideoAsset::five_g_default();
    let cfg = PlayerConfig::default();
    let sessions: Vec<_> = traces
        .iter()
        .map(|t| {
            let mut abr = make(t);
            stream(&asset, t, &mut abr, &cfg, 0.0)
        })
        .collect();
    (
        mean(&sessions.iter().map(|s| s.stall_pct()).collect::<Vec<_>>()),
        mean(&sessions.iter().map(|s| s.qoe).collect::<Vec<_>>()),
    )
}

#[test]
fn robust_mpc_stalls_less_than_fast_mpc_on_5g() {
    let gen = TraceGenerator::new(77);
    let traces = gen.lumos5g_corpus(12);
    let (fast_stall, _) = mean_stall_and_qoe(&traces, |_| Mpc::fast());
    let (robust_stall, _) = mean_stall_and_qoe(&traces, |_| Mpc::robust());
    assert!(
        robust_stall < fast_stall,
        "robust {robust_stall:.2}% vs fast {fast_stall:.2}%"
    );
}

#[test]
fn oracle_prediction_dominates_harmonic_mean() {
    let gen = TraceGenerator::new(78);
    let traces = gen.lumos5g_corpus(12);
    let (_, hm_qoe) = mean_stall_and_qoe(&traces, |_| Mpc::fast());
    let (_, oracle_qoe) = mean_stall_and_qoe(&traces, |t| {
        Mpc::with_predictor(Box::new(OraclePredictor::new(t.clone(), 8.0)), false, "o")
    });
    assert!(
        oracle_qoe > hm_qoe,
        "oracle {oracle_qoe:.1} vs hm {hm_qoe:.1}"
    );
}

#[test]
fn five_g_aware_selection_saves_energy_on_the_corpus() {
    let gen = TraceGenerator::new(79);
    let g5 = gen.lumos5g_corpus(12);
    let g4 = gen.lte_corpus(12);
    let asset = VideoAsset::five_g_default();
    let four_g_avg = mean(&g4.iter().map(|t| t.mean_mbps()).collect::<Vec<_>>());
    let run = |cfg: &IfSelectConfig| {
        let results: Vec<_> = g5
            .iter()
            .zip(&g4)
            .map(|(t5, t4)| {
                let mut mpc = Mpc::fast();
                stream_with_selection(&asset, t5, t4, &mut mpc, cfg, &PlayerConfig::default())
            })
            .collect();
        (
            mean(&results.iter().map(|r| r.energy_j).collect::<Vec<_>>()),
            mean(
                &results
                    .iter()
                    .map(|r| r.session.stall_time_s)
                    .collect::<Vec<_>>(),
            ),
        )
    };
    let (only_energy, only_stall) = run(&IfSelectConfig::five_g_only());
    let (aware_energy, aware_stall) = run(&IfSelectConfig::aware(four_g_avg));
    assert!(
        aware_energy < only_energy,
        "energy: aware {aware_energy:.0} vs only {only_energy:.0}"
    );
    assert!(
        aware_stall < only_stall * 1.1,
        "stalls must not regress much: {aware_stall:.1} vs {only_stall:.1}"
    );
}

#[test]
fn four_g_ladder_over_four_g_traces_rarely_stalls() {
    // The premise of Fig 17b: the 4G world is comfortable for ABR.
    let gen = TraceGenerator::new(80);
    let traces = gen.lte_corpus(12);
    let asset = VideoAsset::four_g_default();
    let cfg = PlayerConfig::default();
    let stall = mean(
        &traces
            .iter()
            .map(|t| stream(&asset, t, &mut Mpc::robust(), &cfg, 0.0).stall_pct())
            .collect::<Vec<_>>(),
    );
    assert!(stall < 2.0, "4G stall {stall:.2}%");
}
