//! Recovery-layer integration tests: determinism of the recovery-event
//! stream, the zero-cost disabled path, retry reproducibility, and
//! crash-consistent manifest round-trips.

use fiveg_bench::experiments;
use fiveg_bench::report::Report;
use fiveg_bench::runner::{self, ManifestEntry, RunStatus, Supervisor};
use fiveg_wild::simcore::faults::{self, FaultScenario, FaultSchedule};
use fiveg_wild::simcore::recovery::{self, RecoveryKind};

fn registry_entry(id: &str) -> (&'static str, experiments::Experiment) {
    experiments::registry()
        .iter()
        .find(|(rid, _)| *rid == id)
        .copied()
        .unwrap_or_else(|| panic!("{id} registered"))
}

/// Same (seed, scenario) → identical recovery-event stream, event by event
/// (kind, time, detect latency, outage, detail), and a non-empty one: the
/// chaos scenario must actually exercise the self-healing hooks.
#[test]
fn recovery_stream_is_deterministic() {
    let sup = Supervisor::with_scenario(FaultScenario::chaos());
    for id in ["fig9", "fig10"] {
        let (sid, f) = registry_entry(id);
        let a = sup.run_one(sid, f, 2021);
        let b = sup.run_one(sid, f, 2021);
        assert_eq!(a.status, RunStatus::Ok, "{id}");
        assert_eq!(a.recovery, b.recovery, "{id} event stream differs");
        assert!(
            !a.recovery.is_empty(),
            "{id} took no recovery actions under chaos"
        );
        assert_eq!(a.report.render(), b.report.render(), "{id}");
    }
}

/// The chaos drive/idle experiments exercise the radio- and RRC-layer
/// recoveries specifically (NSA fallback, RRC re-establishment).
#[test]
fn chaos_triggers_radio_and_rrc_recoveries() {
    let sup = Supervisor::with_scenario(FaultScenario::chaos());
    let (sid, f) = registry_entry("fig9");
    let drive = sup.run_one(sid, f, 2021);
    assert!(
        drive
            .recovery
            .iter()
            .any(|e| e.kind == RecoveryKind::NsaFallback),
        "drive under chaos must ride out anchor losses on the LTE leg"
    );
    let (sid, f) = registry_entry("fig10");
    let idle = sup.run_one(sid, f, 2021);
    assert!(
        idle.recovery
            .iter()
            .any(|e| e.kind == RecoveryKind::RrcReestablish),
        "idle RRC under chaos must re-establish after resets"
    );
    for e in drive.recovery.iter().chain(idle.recovery.iter()) {
        assert!(e.detect_s >= 0.0 && e.detect_s.is_finite());
        assert!(e.outage_s >= 0.0 && e.outage_s.is_finite());
        assert!(e.t_s.is_finite());
    }
}

/// Without a fault scenario the recovery layer is invisible: zero events
/// collected, and the supervised report stays bit-identical to a direct,
/// plane-free call.
#[test]
fn disabled_plane_means_zero_events_and_identical_reports() {
    let sup = Supervisor::default();
    for id in ["table2", "fig9", "fig10"] {
        let direct = experiments::run(id, 2021).expect(id).render();
        let (sid, f) = registry_entry(id);
        let out = sup.run_one(sid, f, 2021);
        assert_eq!(out.status, RunStatus::Ok);
        assert!(
            out.recovery.is_empty(),
            "{id} emitted events without a scenario"
        );
        assert_eq!(out.report.render(), direct, "{id} output drifted");
        let entry = ManifestEntry::from_outcome(&out);
        assert_eq!(entry.recovery.events, 0);
        assert_eq!(entry.recovery.outage_s, 0.0);
    }
}

/// Recording without a collector is a no-op even when a fault plane *is*
/// installed — only the supervised runner (with a scenario) collects.
#[test]
fn plane_without_collector_collects_nothing() {
    let _guard = faults::install(FaultSchedule::generate(7, &FaultScenario::chaos()));
    recovery::record(RecoveryKind::TcpRto, 1.0, 0.5, 2.0, || "x".into());
    assert!(recovery::drain().is_empty());
}

/// The windowless `quiet` scenario is a true control: even with the plane
/// installed and a collector listening, a *naturally* starved video session
/// (deep fade, long stalls, no fault windows) takes zero recovery actions
/// and plays out bit-identically to a plane-free session.
#[test]
fn quiet_plane_never_trips_video_recovery() {
    use fiveg_wild::transport::shaper::BandwidthTrace;
    use fiveg_wild::video::abr::{build, AbrAlgo};
    use fiveg_wild::video::asset::VideoAsset;
    use fiveg_wild::video::player::{stream, PlayerConfig};
    let asset = VideoAsset::five_g_default();
    let mut fade = vec![120.0];
    fade.extend(std::iter::repeat_n(0.25, 120));
    fade.push(200.0);
    let trace = BandwidthTrace::new(fade, 1.0);
    let cfg = PlayerConfig::default();
    let clean = {
        let mut abr = build(AbrAlgo::Bola);
        stream(&asset, &trace, abr.as_mut(), &cfg, 0.0)
    };
    let quiet = {
        let _g = faults::install(FaultSchedule::generate(3, &FaultScenario::quiet()));
        let _c = recovery::collect();
        let mut abr = build(AbrAlgo::Bola);
        let s = stream(&asset, &trace, abr.as_mut(), &cfg, 0.0);
        assert!(
            recovery::drain().is_empty(),
            "natural stalls must not trigger recovery actions"
        );
        s
    };
    assert!(
        clean.stall_time_s > 0.0,
        "the fade must actually stall playback"
    );
    assert_eq!(clean.stall_time_s, quiet.stall_time_s);
    assert_eq!(clean.qoe, quiet.qoe);
    assert_eq!(clean.chunks.len(), quiet.chunks.len());
}

/// Same control property for the radio layer: a quiet plane declares no
/// radio-link failures, so the drive is bit-identical to a plane-free one.
#[test]
fn quiet_plane_never_declares_rlf() {
    use fiveg_geo::mobility::MobilityModel;
    use fiveg_wild::radio::cell::NetworkLayout;
    use fiveg_wild::radio::handoff::{simulate_drive, BandSetting, HandoffConfig};
    let run = |quiet: bool| {
        let _g =
            quiet.then(|| faults::install(FaultSchedule::generate(9, &FaultScenario::quiet())));
        let _c = quiet.then(recovery::collect);
        let layout = NetworkLayout::tmobile_drive_corridor(9);
        let m = MobilityModel::driving_10km();
        let r = simulate_drive(
            &layout,
            &m,
            BandSetting::NsaPlusLte,
            &HandoffConfig::default(),
            9,
        );
        if quiet {
            assert!(recovery::drain().is_empty(), "quiet drive recovered");
        }
        (r.total_handoffs(), r.radio_share())
    };
    assert_eq!(run(false), run(true));
}

fn seed_sensitive_exp(seed: u64) -> Report {
    if seed == 4242 {
        panic!("bad campaign seed");
    }
    Report {
        id: "flaky",
        title: "recovered on retry".into(),
        body: format!("seed={seed}"),
    }
}

fn runaway_exp(_seed: u64) -> Report {
    let mut q = fiveg_wild::simcore::EventQueue::new();
    let mut i = 0u64;
    loop {
        q.schedule(fiveg_wild::simcore::SimTime::from_millis(i), i);
        q.pop();
        i += 1;
    }
}

/// The perturbed-seed retry is reproducible: two independent campaign runs
/// take the same number of attempts, derive the same retry seed, and emit
/// byte-identical reports.
#[test]
fn perturbed_retry_is_reproducible_across_runs() {
    let sup = Supervisor::default();
    let a = sup.run_one("flaky", seed_sensitive_exp, 4242);
    let b = sup.run_one("flaky", seed_sensitive_exp, 4242);
    assert_eq!(a.status, RunStatus::Ok);
    assert_eq!(a.attempts, 2, "first attempt panics, retry lands");
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.report.render(), b.report.render());
    assert_eq!(a.note, b.note);
    assert_eq!(
        sup.attempt_seed("flaky", 4242, 1),
        sup.attempt_seed("flaky", 4242, 1),
        "retry seed derivation is a pure function"
    );
}

/// Budget exhaustion degrades the experiment, and the degradation is
/// recorded in the manifest: status `degraded`, a budget note, and it
/// round-trips through parse.
#[test]
fn budget_exhaustion_lands_in_manifest_as_degraded() {
    let sup = Supervisor {
        event_budget: 10_000,
        ..Supervisor::default()
    };
    let out = sup.run_one("runaway", runaway_exp, 1);
    assert_eq!(out.status, RunStatus::Degraded);
    let text = runner::manifest(&[out], 1, Some("chaos")).render();
    let (_, _, entries) = runner::parse_manifest(&text).expect("manifest parses");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].status, RunStatus::Degraded);
    assert!(
        entries[0]
            .note
            .as_deref()
            .unwrap()
            .contains(fiveg_wild::simcore::budget::EXHAUSTED_MSG),
        "note: {:?}",
        entries[0].note
    );
}

/// Campaign-level crash consistency: the manifest for a full small campaign
/// under chaos parses, shows zero degraded experiments, aggregates a
/// non-zero recovery count, and re-renders byte-identically — the property
/// `--resume` and the CI double-run check rely on.
#[test]
fn chaos_campaign_manifest_round_trips_with_recoveries() {
    let sup = Supervisor::with_scenario(FaultScenario::chaos());
    let subset: Vec<_> = experiments::registry()
        .into_iter()
        .filter(|(id, _)| ["table2", "fig9", "fig10"].contains(id))
        .collect();
    let outcomes = sup.run_registry(&subset, 2021);
    let text = runner::manifest(&outcomes, 2021, Some("chaos")).render();
    let (seed, scenario, entries) = runner::parse_manifest(&text).expect("parses");
    assert_eq!(seed, 2021);
    assert_eq!(scenario.as_deref(), Some("chaos"));
    assert!(entries.iter().all(|e| e.status == RunStatus::Ok));
    let events: usize = entries.iter().map(|e| e.recovery.events).sum();
    assert!(events > 0, "chaos campaign recorded no recovery actions");
    assert_eq!(
        runner::manifest_from_entries(&entries, seed, scenario.as_deref()).render(),
        text,
        "parse → re-render must be byte-identical"
    );
}
