//! The stress harness's promises, end to end:
//!
//! 1. **Deterministic** — the same stress seed renders a byte-identical
//!    `stress.txt` table across reruns and worker counts.
//! 2. **Finds and shrinks** — a deliberately broken invariant (the
//!    canary hook) is caught as a guard violation, minimized to a case
//!    with no fault events and a collapsed budget, and written as a
//!    reproducer that replays to the identical violation — twice.
//! 3. **Quiet is clean** — the unfaulted simulation sails through a
//!    seeded sweep with zero failures.

use fiveg_bench::stress::{
    self, replay_repro, repro_json, run_case, run_stress, shrink, stress_table, StressConfig,
    Verdict,
};
use std::sync::OnceLock;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(120);

/// A cheap canary campaign: two cases pinned to fig10 (the RRC figure —
/// fast even in debug builds) under a real fault scenario, with the
/// deliberately broken invariant injected.
fn canary_cfg() -> StressConfig {
    StressConfig {
        cases: 2,
        seed: 7,
        scenario: Some("rrc-flaky".to_string()),
        canary: true,
        jobs: 2,
        experiments: Some(vec!["fig10".to_string()]),
        ..StressConfig::default()
    }
}

fn canary_report() -> &'static stress::StressReport {
    static RUN: OnceLock<stress::StressReport> = OnceLock::new();
    RUN.get_or_init(|| run_stress(&canary_cfg()))
}

#[test]
fn canary_is_found_and_shrunk_to_a_trivial_case() {
    let report = canary_report();
    assert_eq!(report.failures(), report.results.len(), "every case trips");
    for r in &report.results {
        assert_eq!(r.outcome.verdict, Verdict::GuardViolation);
        assert!(
            r.outcome.signature.starts_with("stress/canary"),
            "unexpected signature: {}",
            r.outcome.signature
        );
        let (small, small_out, _) = r.shrunk.as_ref().expect("failures are shrunk");
        // The canary fires regardless of faults, so the shrinker must
        // strip the schedule entirely and collapse the budget.
        assert_eq!(small.size(), 0, "no fault events should survive");
        assert!(small.scenario.is_none(), "scenario should be dropped");
        assert!(
            small.event_budget <= 2_000,
            "budget should collapse, got {}",
            small.event_budget
        );
        assert_eq!(small_out.failure_key(), r.outcome.failure_key());
    }
}

#[test]
fn repro_replays_the_identical_violation_twice() {
    let report = canary_report();
    let (small, small_out, _) = report.results[0].shrunk.as_ref().expect("shrunk");
    let doc = repro_json(report.seed, small, small_out).render();
    for round in 1..=2 {
        let (_, expected, observed, matches) = replay_repro(&doc, DEADLINE).expect("replay");
        assert!(
            matches,
            "round {round}: expected {expected:?}, observed {observed:?}"
        );
        assert_eq!(observed.signature, small_out.signature, "round {round}");
    }
}

#[test]
fn stress_table_is_byte_identical_across_reruns_and_worker_counts() {
    let a = stress_table(canary_report());
    let b = stress_table(&run_stress(&canary_cfg()));
    assert_eq!(a, b, "same seed, same bytes");
    let serial = stress_table(&run_stress(&StressConfig {
        jobs: 1,
        ..canary_cfg()
    }));
    assert_eq!(a, serial, "worker count must not leak into the table");
}

#[test]
fn quiet_sweep_is_clean() {
    let report = run_stress(&StressConfig {
        cases: 2,
        seed: 2021,
        scenario: Some("quiet".to_string()),
        jobs: 2,
        experiments: Some(vec!["fig10".to_string(), "fig8".to_string()]),
        ..StressConfig::default()
    });
    assert_eq!(report.failures(), 0, "{}", stress_table(&report));
    assert!(report.results.iter().all(|r| r.shrunk.is_none()));
}

#[test]
fn shrink_preserves_a_budget_exhaustion_key() {
    // A real (non-canary) failure mode: fig9 charges the event budget,
    // so a tiny budget trips the supervisor. The shrinker must keep the
    // verdict while minimizing, never "fix" the case into passing.
    let mut case = stress::generate_cases(&StressConfig {
        cases: 1,
        seed: 3,
        scenario: Some("blockage-storm".to_string()),
        experiments: Some(vec!["fig9".to_string()]),
        ..StressConfig::default()
    })
    .remove(0);
    case.event_budget = 50;
    let out = run_case(&case, DEADLINE).expect("valid case");
    assert_eq!(out.verdict, Verdict::BudgetExhausted, "{}", out.signature);
    let (small, small_out, _) = shrink(&case, &out, DEADLINE);
    assert_eq!(small_out.verdict, Verdict::BudgetExhausted);
    assert!(small.size() <= case.size());
    assert!(small.event_budget <= case.event_budget);
}
