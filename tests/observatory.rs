//! The observatory's campaign-level promises, end to end:
//!
//! 1. **Catalog lint** — every metric name emitted anywhere in the
//!    workspace is registered in `telemetry::CATALOG` under the right
//!    kind, no call site uses a dynamic (unlintable) name, and every
//!    catalog entry is actually emitted somewhere (no metric rot in
//!    either direction).
//! 2. **Byte identity** — `metrics.json`, `observatory.txt`, and the
//!    folded flamegraph stacks are pure functions of sim-time telemetry:
//!    serial and `--jobs 4` campaigns produce identical bytes.
//! 3. **Diff discipline** — the drift report of a campaign against itself
//!    is empty; an injected regression is flagged at FAIL grade.

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::json::Json;
use fiveg_bench::observe;
use fiveg_bench::runner::{RunOutcome, Supervisor};
use fiveg_wild::simcore::telemetry::{self, registered, AttemptTelemetry, MetricKind, CATALOG};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::OnceLock;

/// A cheap four-layer subset (see `telemetry_plane.rs`): radio, RRC,
/// transport, video.
fn subset() -> Vec<(&'static str, Experiment)> {
    let wanted = ["fig9", "fig10", "fig8", "fig17"];
    let registry = experiments::registry();
    wanted
        .iter()
        .map(|w| {
            *registry
                .iter()
                .find(|(id, _)| id == w)
                .unwrap_or_else(|| panic!("registry lost {w}"))
        })
        .collect()
}

fn run(jobs: usize) -> Vec<RunOutcome> {
    let supervisor = Supervisor {
        telemetry: true,
        ..Supervisor::default()
    };
    supervisor.run_registry_jobs(&subset(), 2021, jobs, |_, _| {})
}

fn per_experiment(outcomes: &[RunOutcome]) -> Vec<(String, AttemptTelemetry)> {
    outcomes
        .iter()
        .map(|o| (o.id.to_string(), o.telemetry.clone().unwrap_or_default()))
        .collect()
}

/// The serial instrumented run, shared across tests (expensive in debug).
fn serial() -> &'static [RunOutcome] {
    static RUN: OnceLock<Vec<RunOutcome>> = OnceLock::new();
    RUN.get_or_init(|| run(1))
}

/// Every observatory artifact of one campaign, as
/// `(metrics.json, observatory.txt, per-experiment folded, campaign folded)`.
fn artifacts(outcomes: &[RunOutcome]) -> (String, String, Vec<String>, String) {
    let per = per_experiment(outcomes);
    let metrics = observe::campaign_metrics(2021, None, &per).render();
    let txt = observe::observatory_txt(2021, None, &per);
    let mut campaign = std::collections::BTreeMap::new();
    let mut folded = Vec::new();
    for (_, t) in &per {
        let map = observe::folded_map(t);
        folded.push(observe::render_folded(&map));
        observe::merge_folded(&mut campaign, &map);
    }
    (metrics, txt, folded, observe::render_folded(&campaign))
}

#[test]
fn every_emitted_metric_name_is_registered_and_vice_versa() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let calls = observe::scan_dir(&root).expect("scan crates/*/src");
    assert!(
        calls.len() >= 30,
        "scanner found only {} call sites — did the source layout move?",
        calls.len()
    );
    let mut problems = Vec::new();
    let mut emitted: BTreeSet<(String, &'static str)> = BTreeSet::new();
    for c in &calls {
        let Some(name) = &c.name else {
            problems.push(format!(
                "{}:{}: dynamic metric name (hook {}) — the catalog lint \
                 cannot check it; use one literal call per name",
                c.file,
                c.line,
                c.kind.as_str()
            ));
            continue;
        };
        // `test/` names are the sanctioned scratch space of unit tests.
        if name.starts_with("test/") {
            continue;
        }
        emitted.insert((name.clone(), c.kind.as_str()));
        if registered(name, c.kind).is_none() {
            problems.push(format!(
                "{}:{}: `{name}` ({}) is not in telemetry::CATALOG",
                c.file,
                c.line,
                c.kind.as_str()
            ));
        }
    }
    for def in CATALOG {
        if !emitted.contains(&(def.name.to_string(), def.kind.as_str())) {
            problems.push(format!(
                "CATALOG entry `{}` ({}) is emitted nowhere — dead metric",
                def.name,
                def.kind.as_str()
            ));
        }
    }
    assert!(
        problems.is_empty(),
        "catalog lint:\n{}",
        problems.join("\n")
    );
}

#[test]
fn catalog_lint_fails_on_an_unregistered_name() {
    // The mechanism the lint rests on: an unregistered literal and a
    // dynamic name must both be rejected exactly as the real scan would.
    let src = "telemetry::count(\"no/such/counter\", 1); telemetry::gauge(dynamic, 0.0);";
    let calls = observe::scan_metric_calls(src, "synthetic.rs");
    assert_eq!(calls.len(), 2);
    assert_eq!(calls[0].name.as_deref(), Some("no/such/counter"));
    assert!(
        registered("no/such/counter", MetricKind::Counter).is_none(),
        "an unregistered name must not resolve"
    );
    assert_eq!(calls[1].name, None, "dynamic names surface as None");
}

#[test]
fn observatory_artifacts_are_byte_identical_serial_vs_jobs_4() {
    if !telemetry::compiled() {
        return;
    }
    let a = artifacts(serial());
    let b = artifacts(&run(4));
    assert_eq!(a.0, b.0, "metrics.json must not depend on worker count");
    assert_eq!(a.1, b.1, "observatory.txt must not depend on worker count");
    assert_eq!(a.2, b.2, "folded stacks must not depend on worker count");
    assert_eq!(a.3, b.3, "campaign.folded must not depend on worker count");
}

#[test]
fn observatory_artifacts_are_deterministic_across_reruns() {
    if !telemetry::compiled() {
        return;
    }
    assert_eq!(artifacts(serial()), artifacts(&run(1)));
}

#[test]
fn campaign_metrics_cover_the_four_layers_with_catalog_annotations() {
    if !telemetry::compiled() {
        return;
    }
    let per = per_experiment(serial());
    let doc = observe::campaign_metrics(2021, None, &per);
    let layers: BTreeSet<&str> = doc
        .get("layers")
        .and_then(Json::as_arr)
        .expect("layers")
        .iter()
        .filter_map(|l| l.get("layer").and_then(Json::as_str))
        .collect();
    for expected in ["radio", "rrc", "transport", "video"] {
        assert!(
            layers.contains(expected),
            "missing layer {expected}: {layers:?}"
        );
    }
    assert!(
        !layers.contains("?"),
        "unregistered names leaked: {layers:?}"
    );
    // The series plane made it end to end: the radio RSRP series has
    // samples and a catalog unit.
    let series = doc.get("series").and_then(Json::as_arr).expect("series");
    let rsrp = series
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("radio/rsrp_dbm_t"))
        .expect("radio/rsrp_dbm_t series");
    assert_eq!(rsrp.get("unit").and_then(Json::as_str), Some("dBm"));
    assert!(rsrp.get("samples").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
}

#[test]
fn flamegraph_stacks_nest_and_merge() {
    if !telemetry::compiled() {
        return;
    }
    let (_, _, folded, campaign) = artifacts(serial());
    assert!(
        folded.iter().any(|f| !f.is_empty()),
        "at least one experiment produced stacks"
    );
    assert!(
        campaign.lines().any(|l| l.starts_with("radio/drive ")),
        "campaign.folded misses the radio drive root: {campaign}"
    );
    // Every line is `stack<space>positive-integer`.
    for line in campaign.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack count");
        assert!(!stack.is_empty());
        assert!(count.parse::<u64>().expect("integer self-µs") > 0);
    }
}

#[test]
fn self_diff_is_empty_and_injected_drift_is_flagged() {
    if !telemetry::compiled() {
        return;
    }
    let per = per_experiment(serial());
    let doc = observe::campaign_metrics(2021, None, &per);
    let same = observe::diff_metrics(&doc, &doc);
    assert_eq!(
        (same.warns, same.fails),
        (0, 0),
        "self-diff must be clean:\n{}",
        same.report
    );
    assert!(same.compared > 0, "self-diff compared nothing");

    // Inject a regression: drop one experiment's telemetry entirely (the
    // shape of a silently-broken instrumentation change).
    let mut broken = per.clone();
    broken[0].1 = AttemptTelemetry::default();
    let cur = observe::campaign_metrics(2021, None, &broken);
    let drift = observe::diff_metrics(&doc, &cur);
    assert!(
        drift.fails > 0,
        "a gutted experiment must FAIL the diff:\n{}",
        drift.report
    );
}
