//! Randomized property tests over the core data structures and invariants,
//! spanning crates.
//!
//! These used to be `proptest` suites; they now run on an in-tree harness
//! (seeded [`RngStream`] inputs, fixed case counts) so the tier-1 suite
//! builds with zero network access. Cases are deterministic per seed; the
//! `heavy-checks` feature multiplies the case count.

use fiveg_wild::power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_wild::radio::band::{Band, Direction};
use fiveg_wild::radio::link::{link_capacity_mbps, LinkState};
use fiveg_wild::radio::propagation::rsrp_dbm;
use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::simcore::stats;
use fiveg_wild::simcore::{RngStream, SimDuration, SimTime, TimeSeries};
use fiveg_wild::transport::shaper::BandwidthTrace;

/// Number of random cases per property.
fn cases() -> usize {
    if cfg!(feature = "heavy-checks") {
        2048
    } else {
        256
    }
}

/// RSRP is monotonically non-increasing in distance for every band.
#[test]
fn rsrp_decreases_with_distance() {
    let mut rng = RngStream::new(1, "prop/rsrp-mono");
    let bands = [
        Band::LteMidBand,
        Band::N5Dss,
        Band::N71,
        Band::N260,
        Band::N261,
    ];
    for _ in 0..cases() {
        let d1 = rng.gen_range(1.0..5_000.0);
        let delta = rng.gen_range(1.0..5_000.0);
        let band = *rng.choose(&bands);
        let near = rsrp_dbm(band, d1, false);
        let far = rsrp_dbm(band, d1 + delta, false);
        assert!(far <= near + 1e-9, "{band:?} d={d1} delta={delta}");
    }
}

/// Link capacity is monotone in RSRP and never exceeds the UE cap.
#[test]
fn capacity_monotone_in_rsrp() {
    let mut rng = RngStream::new(2, "prop/cap-mono");
    let ue = UeModel::GalaxyS20Ultra;
    for _ in 0..cases() {
        let r1 = rng.gen_range(-125.0..-44.0);
        let bump = rng.gen_range(0.0..40.0);
        let weak = LinkState {
            band: Band::N261,
            rsrp_dbm: r1,
            sa: false,
        };
        let strong = LinkState {
            rsrp_dbm: (r1 + bump).min(-44.0),
            ..weak
        };
        let c_weak = link_capacity_mbps(ue, &weak, Direction::Downlink);
        let c_strong = link_capacity_mbps(ue, &strong, Direction::Downlink);
        assert!(c_strong + 1e-9 >= c_weak, "r1={r1} bump={bump}");
        assert!(c_strong <= ue.max_throughput_mbps(Band::N261.class(), Direction::Downlink) + 1e-9);
    }
}

/// Power curves are monotone in throughput, and the RSRP penalty never
/// makes power cheaper.
#[test]
fn power_monotone_and_penalized() {
    let mut rng = RngStream::new(3, "prop/power-mono");
    let m = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
    for _ in 0..cases() {
        let t1 = rng.gen_range(0.0..2_000.0);
        let dt = rng.gen_range(0.0..500.0);
        let rsrp = rng.gen_range(-120.0..-60.0);
        assert!(
            m.power_mw(Direction::Downlink, t1 + dt) >= m.power_mw(Direction::Downlink, t1),
            "t1={t1} dt={dt}"
        );
        assert!(
            m.power_mw_with_rsrp(Direction::Downlink, t1, rsrp)
                >= m.power_mw(Direction::Downlink, t1) - 1e-9,
            "t1={t1} rsrp={rsrp}"
        );
    }
}

/// Transfer time over a shaped trace is additive: sending A bytes then
/// B bytes takes exactly as long as sending A+B.
#[test]
fn transfer_time_is_additive() {
    let mut rng = RngStream::new(4, "prop/transfer-additive");
    for _ in 0..cases() {
        let a = rng.gen_range(1_000.0..5e6);
        let b = rng.gen_range(1_000.0..5e6);
        let start = rng.gen_range(0.0..50.0);
        let n_rates = rng.gen_range(4usize..16);
        let rates: Vec<f64> = (0..n_rates).map(|_| rng.gen_range(0.5..500.0)).collect();
        let trace = BandwidthTrace::new(rates, 1.0);
        let t_ab = trace.transfer_time_s(a + b, start);
        let t_a = trace.transfer_time_s(a, start);
        let t_b = trace.transfer_time_s(b, start + t_a);
        assert!((t_ab - (t_a + t_b)).abs() < 1e-6, "{t_ab} vs {}", t_a + t_b);
    }
}

/// Trapezoidal energy integration is additive over adjacent windows.
#[test]
fn energy_integration_is_additive() {
    let mut rng = RngStream::new(5, "prop/energy-additive");
    for _ in 0..cases() {
        let n = rng.gen_range(3usize..40);
        let mut ts = TimeSeries::new();
        for i in 0..n {
            ts.push(
                SimTime::from_millis(i as u64 * 100),
                rng.gen_range(0.0..5_000.0),
            );
        }
        let cut_frac = rng.gen_range(0.1..0.9);
        let start = ts.start().expect("non-empty");
        let end = ts.end().expect("non-empty");
        let span = end.since(start);
        let cut = start + SimDuration::from_micros((span.as_micros() as f64 * cut_frac) as u64);
        let whole = ts.integrate_between(start, end);
        let parts = ts.integrate_between(start, cut) + ts.integrate_between(cut, end);
        assert!(
            (whole - parts).abs() < 1e-6 * whole.max(1.0),
            "{whole} vs {parts}"
        );
    }
}

/// p95 lies between min and max, and percentiles are monotone.
#[test]
fn percentiles_are_monotone() {
    let mut rng = RngStream::new(6, "prop/percentiles");
    for _ in 0..cases() {
        let n = rng.gen_range(1usize..100);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let p50 = stats::percentile(&xs, 50.0);
        let p95 = stats::percentile(&xs, 95.0);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(p50 <= p95 + 1e-9);
        assert!(p95 >= lo - 1e-9 && p95 <= hi + 1e-9);
    }
}

/// Harmonic mean never exceeds the arithmetic mean.
#[test]
fn harmonic_le_arithmetic() {
    let mut rng = RngStream::new(7, "prop/harmonic");
    for _ in 0..cases() {
        let n = rng.gen_range(1usize..50);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1e4)).collect();
        assert!(stats::harmonic_mean(&xs) <= stats::mean(&xs) + 1e-9);
    }
}
