//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use fiveg_wild::power::datamodel::{DataPowerModel, NetworkKind};
use fiveg_wild::radio::band::{Band, Direction};
use fiveg_wild::radio::link::{link_capacity_mbps, LinkState};
use fiveg_wild::radio::propagation::rsrp_dbm;
use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::simcore::stats;
use fiveg_wild::simcore::{SimDuration, SimTime, TimeSeries};
use fiveg_wild::transport::shaper::BandwidthTrace;
use proptest::prelude::*;

proptest! {
    /// RSRP is monotonically non-increasing in distance for every band.
    #[test]
    fn rsrp_decreases_with_distance(
        d1 in 1.0f64..5_000.0,
        delta in 1.0f64..5_000.0,
        band_idx in 0usize..5,
    ) {
        let band = [Band::LteMidBand, Band::N5Dss, Band::N71, Band::N260, Band::N261][band_idx];
        let near = rsrp_dbm(band, d1, false);
        let far = rsrp_dbm(band, d1 + delta, false);
        prop_assert!(far <= near + 1e-9);
    }

    /// Link capacity is monotone in RSRP and never exceeds the UE cap.
    #[test]
    fn capacity_monotone_in_rsrp(r1 in -125.0f64..-44.0, bump in 0.0f64..40.0) {
        let ue = UeModel::GalaxyS20Ultra;
        let weak = LinkState { band: Band::N261, rsrp_dbm: r1, sa: false };
        let strong = LinkState { rsrp_dbm: (r1 + bump).min(-44.0), ..weak };
        let c_weak = link_capacity_mbps(ue, &weak, Direction::Downlink);
        let c_strong = link_capacity_mbps(ue, &strong, Direction::Downlink);
        prop_assert!(c_strong + 1e-9 >= c_weak);
        prop_assert!(c_strong <= ue.max_throughput_mbps(Band::N261.class(), Direction::Downlink) + 1e-9);
    }

    /// Power curves are monotone in throughput, and the RSRP penalty never
    /// makes power cheaper.
    #[test]
    fn power_monotone_and_penalized(
        t1 in 0.0f64..2_000.0,
        dt in 0.0f64..500.0,
        rsrp in -120.0f64..-60.0,
    ) {
        let m = DataPowerModel::lookup(UeModel::GalaxyS20Ultra, NetworkKind::MmWave);
        prop_assert!(m.power_mw(Direction::Downlink, t1 + dt) >= m.power_mw(Direction::Downlink, t1));
        prop_assert!(
            m.power_mw_with_rsrp(Direction::Downlink, t1, rsrp)
                >= m.power_mw(Direction::Downlink, t1) - 1e-9
        );
    }

    /// Transfer time over a shaped trace is additive: sending A bytes then
    /// B bytes takes exactly as long as sending A+B.
    #[test]
    fn transfer_time_is_additive(
        a in 1_000.0f64..5e6,
        b in 1_000.0f64..5e6,
        start in 0.0f64..50.0,
        rates in proptest::collection::vec(0.5f64..500.0, 4..16),
    ) {
        let trace = BandwidthTrace::new(rates, 1.0);
        let t_ab = trace.transfer_time_s(a + b, start);
        let t_a = trace.transfer_time_s(a, start);
        let t_b = trace.transfer_time_s(b, start + t_a);
        prop_assert!((t_ab - (t_a + t_b)).abs() < 1e-6, "{t_ab} vs {}", t_a + t_b);
    }

    /// Trapezoidal energy integration is additive over adjacent windows.
    #[test]
    fn energy_integration_is_additive(
        values in proptest::collection::vec(0.0f64..5_000.0, 3..40),
        cut_frac in 0.1f64..0.9,
    ) {
        let mut ts = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            ts.push(SimTime::from_millis(i as u64 * 100), *v);
        }
        let start = ts.start().expect("non-empty");
        let end = ts.end().expect("non-empty");
        let span = end.since(start);
        let cut = start + SimDuration::from_micros((span.as_micros() as f64 * cut_frac) as u64);
        let whole = ts.integrate_between(start, end);
        let parts = ts.integrate_between(start, cut) + ts.integrate_between(cut, end);
        prop_assert!((whole - parts).abs() < 1e-6 * whole.max(1.0), "{whole} vs {parts}");
    }

    /// p95 lies between min and max, and percentiles are monotone.
    #[test]
    fn percentiles_are_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let p50 = stats::percentile(&xs, 50.0);
        let p95 = stats::percentile(&xs, 95.0);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p50 <= p95 + 1e-9);
        prop_assert!(p95 >= lo - 1e-9 && p95 <= hi + 1e-9);
    }

    /// Harmonic mean never exceeds the arithmetic mean.
    #[test]
    fn harmonic_le_arithmetic(xs in proptest::collection::vec(0.01f64..1e4, 1..50)) {
        prop_assert!(stats::harmonic_mean(&xs) <= stats::mean(&xs) + 1e-9);
    }
}
