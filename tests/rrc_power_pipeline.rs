//! Integration of the RRC machine, the probing tool, the power models, and
//! the monitors: §4's full measurement pipeline.

use fiveg_wild::power::monitor::HardwareMonitor;
use fiveg_wild::power::rrcpower::{
    measure_tail_power_mw, promotion_scenario_trace, RrcPowerParams,
};
use fiveg_wild::probes::rrcprobe::RrcProbe;
use fiveg_wild::rrc::profile::{RrcConfigId, RrcProfile};
use fiveg_wild::simcore::{RngStream, SimTime};

#[test]
fn probe_recovers_every_table7_tail_within_3_percent() {
    for config in RrcConfigId::all() {
        let truth = RrcProfile::for_config(config);
        let inferred = RrcProbe::new(truth, 3.0, 99).infer();
        let rel = (inferred.tail_ms - truth.tail_ms).abs() / truth.tail_ms;
        assert!(
            rel < 0.03,
            "{config:?}: tail {} vs {}",
            inferred.tail_ms,
            truth.tail_ms
        );
    }
}

#[test]
fn monitored_tail_power_matches_table2_for_all_configs() {
    let hw = HardwareMonitor::default();
    for config in RrcConfigId::all() {
        let profile = RrcProfile::for_config(config);
        let params = RrcPowerParams::for_config(config);
        let truth_trace = promotion_scenario_trace(&profile, &params);
        let duration = truth_trace.end().expect("non-empty").as_secs_f64();
        let mut rng = RngStream::new(5, "itest");
        let recorded = hw.record(
            |t| {
                truth_trace
                    .sample_at(SimTime::from_secs_f64(t))
                    .unwrap_or(params.idle_mw)
            },
            duration,
            &mut rng,
        );
        let measured = measure_tail_power_mw(&profile, &recorded);
        let rel = (measured - params.tail_mw).abs() / params.tail_mw;
        assert!(
            rel < 0.08,
            "{config:?}: measured {measured:.0} vs Table 2 {}",
            params.tail_mw
        );
    }
}

#[test]
fn nsa_churn_makes_5g_tails_expensive_end_to_end() {
    // The §4.2 narrative: NSA switches 4G↔5G constantly (Fig 9) and each
    // switch + tail costs real energy. One full tail of mmWave NSA must
    // dwarf a 4G tail.
    let mm = RrcConfigId::VzNsaMmWave;
    let lte = RrcConfigId::Vz4g;
    let e_mm = RrcPowerParams::for_config(mm).tail_energy_mj(&RrcProfile::for_config(mm));
    let e_lte = RrcPowerParams::for_config(lte).tail_energy_mj(&RrcProfile::for_config(lte));
    assert!(
        e_mm > 5.0 * e_lte,
        "mmWave tail {e_mm:.0} mJ vs 4G {e_lte:.0} mJ"
    );
}

#[test]
fn sa_promotes_faster_than_nsa_reaches_nr() {
    // §4.2: SA's direct promotion beats NSA's LTE-anchored two-step.
    let sa = RrcProbe::new(RrcProfile::for_config(RrcConfigId::TmSaLowBand), 3.0, 1).infer();
    let nsa = RrcProbe::new(RrcProfile::for_config(RrcConfigId::TmNsaLowBand), 3.0, 1).infer();
    let sa_promo = sa.promo_5g_ms.expect("SA promo");
    let nsa_promo = nsa.promo_5g_ms.expect("NSA promo");
    assert!(
        sa_promo < nsa_promo / 3.0,
        "SA {sa_promo:.0} ms vs NSA {nsa_promo:.0} ms"
    );
}
