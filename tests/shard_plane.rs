//! Integration tests for the intra-experiment sharding plane: the
//! contract is that sharding is a *scheduling* decision, never a
//! *semantics* decision. Concretely:
//!
//! 1. a sharded experiment's merged outcome is byte-identical whether the
//!    shards run in order, out of order, serially inside one registry
//!    slot (`shard = false`), or fanned out to a `--jobs 4` pool;
//! 2. each shard's ambient fault world is a pure function of
//!    `(attempt seed, experiment id, shard index)` — re-running a shard
//!    reproduces it exactly, and sibling shards get *distinct* worlds;
//! 3. shard-level failures keep the monolithic runner's vocabulary:
//!    retries re-run only the failing shard (note prefixed
//!    `shard i/n:`), interrupts win over degradation in the merge, and a
//!    post-interrupt re-run is byte-identical to a never-interrupted one;
//! 4. per-shard telemetry merges in shard order with span ids re-based,
//!    and the plane never touches the deterministic artifacts;
//! 5. budget exhaustion kills a sharded experiment deterministically
//!    (no wall-clock dependence) and mlkit/walking charges are visible in
//!    the shard's event count.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::runner::{manifest_from_entries, ManifestEntry, RunStatus, ShardRun, Supervisor};
use fiveg_bench::shard::ShardableExperiment;
use fiveg_wild::mlkit::dataset::Dataset;
use fiveg_wild::mlkit::tree::{DecisionTreeRegressor, TreeConfig};
use fiveg_wild::simcore::faults::{self, FaultKind, FaultScenario};
use fiveg_wild::simcore::telemetry::{self, SpanPhase};

const SEED: u64 = 2021;

/// Fetches one real experiment from the registry by id.
fn registry_entry(wanted: &str) -> (&'static str, Experiment) {
    *experiments::registry()
        .iter()
        .find(|(id, _)| *id == wanted)
        .unwrap_or_else(|| panic!("registry lost {wanted}"))
}

// ---------------------------------------------------------------------------
// Synthetic shard bodies (module-level fns so they coerce to the
// `ShardableExperiment` fn pointers).
// ---------------------------------------------------------------------------

/// Deterministic shard body: a fixed function of `(seed, shard)`.
fn plain_shard(seed: u64, shard: usize) -> Vec<f64> {
    vec![seed as f64 * 0.5 + shard as f64, (shard * shard) as f64]
}

/// Order-fixed reducer: formats every shard's values in shard order.
fn plain_merge(seed: u64, parts: &[Vec<f64>]) -> fiveg_bench::report::Report {
    let body = parts
        .iter()
        .enumerate()
        .map(|(i, vals)| format!("shard {i}: {vals:?}\n"))
        .collect::<String>();
    fiveg_bench::report::Report {
        id: "synthetic",
        title: format!("synthetic sharded experiment (seed {seed})"),
        body,
    }
}

static FLAKY_CALLS: AtomicUsize = AtomicUsize::new(0);

/// Panics on its first-ever shard-1 call, then behaves like `plain_shard`.
/// Exercises the per-shard retry loop: only the failing shard re-runs.
fn flaky_shard(seed: u64, shard: usize) -> Vec<f64> {
    if shard == 1 && FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
        panic!("synthetic shard fault");
    }
    plain_shard(seed, shard)
}

/// Fingerprints the ambient fault plane: which kinds fire when over a
/// fixed probe grid. Two runs under the same plane seed must agree
/// exactly; sibling shards (distinct plane seeds) must not.
fn fault_probe_shard(_seed: u64, shard: usize) -> Vec<f64> {
    let kinds = [
        FaultKind::BlockageStorm,
        FaultKind::StallWindow,
        FaultKind::CellOutage,
        FaultKind::AnchorLoss,
    ];
    let mut out = vec![shard as f64];
    for kind in kinds {
        let mut active = 0u32;
        let mut first = -1.0f64;
        for i in 0..4000 {
            let t = i as f64 * 0.25;
            if faults::is_active(kind, t) {
                active += 1;
                if first < 0.0 {
                    first = t;
                }
            }
        }
        out.push(f64::from(active));
        out.push(first);
    }
    out
}

/// Emits telemetry spans and counters so the merge path has something to
/// re-base: one `shard/work` span and `shard+1` ticks per shard.
fn telemetry_shard(_seed: u64, shard: usize) -> Vec<f64> {
    telemetry::clock(0.0);
    telemetry::span_closed("shard/work", 0.0, 1.0 + shard as f64);
    telemetry::count("shard/ticks", shard as u64 + 1);
    vec![shard as f64]
}

/// Fits a small decision tree so the shard's event count reflects the
/// mlkit training charges (satellite: `budget::charge` in mlkit).
fn mlkit_shard(seed: u64, shard: usize) -> Vec<f64> {
    let mut data = Dataset::new(vec!["x".into(), "y".into()], vec![], vec![]);
    for i in 0..200 {
        let x = (i as f64 + shard as f64) * 0.1;
        data.push(vec![x, x * x], (seed % 7) as f64 + x.sin());
    }
    let model = DecisionTreeRegressor::fit(&data, &TreeConfig::default());
    vec![model.predict_all(&data)[0]]
}

fn synthetic_spec(run: fn(u64, usize) -> Vec<f64>, shards: usize) -> ShardableExperiment {
    ShardableExperiment {
        id: "synthetic",
        shards,
        run,
        merge: plain_merge,
    }
}

// ---------------------------------------------------------------------------
// 1. Scheduling independence.
// ---------------------------------------------------------------------------

/// `run_sharded` must equal a manual out-of-order shard walk followed by
/// the same merge: shard runs are independent of execution order, so any
/// scheduler that reassembles shards in index order gets the same bytes.
#[test]
fn sharded_run_equals_out_of_order_manual_merge() {
    let sup = Supervisor::default();
    let spec = synthetic_spec(plain_shard, 3);

    let reference = sup.run_sharded(&spec, SEED);
    assert_eq!(reference.status, RunStatus::Ok);

    // Run the shards in a scrambled order, then hand them to the merge in
    // shard order (the pooled scheduler's reassembly step).
    let mut runs: Vec<ShardRun> = [2usize, 0, 1]
        .iter()
        .map(|&s| sup.run_shard(&spec, SEED, s))
        .collect();
    runs.sort_by_key(|r| r.shard);
    let manual = sup.merge_shard_runs(&spec, SEED, runs);

    assert_eq!(manual.status, reference.status);
    assert_eq!(manual.attempts, reference.attempts);
    assert_eq!(manual.events, reference.events);
    assert_eq!(manual.report.render(), reference.report.render());
}

/// The real sharded experiments must produce byte-identical manifests
/// serially, on a `--jobs 4` pool (where shards fan out as independent
/// work units), and with shard fan-out disabled (`shard = false`).
#[test]
fn real_experiment_bytes_survive_pool_and_no_shard() {
    let entries = vec![registry_entry("fig18c")];
    let render = |sup: &Supervisor, jobs: usize| {
        let outcomes = sup.run_registry_jobs(&entries, SEED, jobs, |_, _| {});
        assert_eq!(outcomes[0].status, RunStatus::Ok, "{:?}", outcomes[0].note);
        let rows: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
        (
            manifest_from_entries(&rows, SEED, None).render(),
            outcomes[0].report.render(),
            outcomes[0].events,
        )
    };

    let sup = Supervisor::default();
    let serial = render(&sup, 1);
    let pooled = render(&sup, 4);
    let unsharded_sup = Supervisor {
        shard: false,
        ..Supervisor::default()
    };
    let unsharded = render(&unsharded_sup, 1);

    assert_eq!(serial, pooled, "pool fan-out changed the bytes");
    assert_eq!(serial, unsharded, "--no-shard changed the bytes");
    assert!(serial.2 > 0, "sharded experiment must charge budget events");
}

// ---------------------------------------------------------------------------
// 2. Pure per-shard plane derivation.
// ---------------------------------------------------------------------------

/// Under a chaos scenario, the same shard re-run twice sees the exact
/// same fault world (pure `(attempt seed, id, shard)` derivation — no
/// scheduling state leaks in), while sibling shards see distinct worlds.
#[test]
fn shard_fault_worlds_are_pure_and_distinct() {
    let sup = Supervisor {
        scenario: Some(FaultScenario::by_name("chaos").expect("chaos scenario")),
        ..Supervisor::default()
    };
    let spec = synthetic_spec(fault_probe_shard, 3);

    let shard0_a = sup.run_shard(&spec, SEED, 0);
    let shard0_b = sup.run_shard(&spec, SEED, 0);
    let shard1 = sup.run_shard(&spec, SEED, 1);
    assert_eq!(shard0_a.status, RunStatus::Ok);
    assert_eq!(
        shard0_a.values, shard0_b.values,
        "same shard, same seed must reproduce the same fault world"
    );
    assert_ne!(
        shard0_a.values[1..],
        shard1.values[1..],
        "sibling shards must get distinct fault worlds"
    );

    // The probes must actually have observed faults, or the distinctness
    // assertion above is vacuous.
    assert!(
        shard0_a.values[1..].iter().any(|&v| v > 0.0),
        "chaos scenario produced no observable faults: {:?}",
        shard0_a.values
    );
}

// ---------------------------------------------------------------------------
// 3. Failure vocabulary: retries, interrupts, merge precedence.
// ---------------------------------------------------------------------------

/// A shard that fails once retries alone; the merged outcome stays `Ok`
/// and carries the failing shard's note under a `shard i/n:` prefix.
#[test]
fn shard_retry_prefixes_note_and_recovers() {
    FLAKY_CALLS.store(0, Ordering::SeqCst);
    let sup = Supervisor::default();
    let spec = synthetic_spec(flaky_shard, 3);

    let outcome = sup.run_sharded(&spec, SEED);
    assert_eq!(outcome.status, RunStatus::Ok);
    assert_eq!(outcome.attempts, 2, "only the flaky shard should retry");
    let note = outcome
        .note
        .as_deref()
        .expect("retried shard leaves a note");
    assert!(note.starts_with("shard 1/3:"), "note: {note}");
    assert!(note.contains("synthetic shard fault"), "note: {note}");

    // Only the flaky shard re-derives its seed: shards 0 and 2 carry
    // attempt-0 values, shard 1 the attempt-1 values. The merged report
    // must equal the reducer applied to exactly that mix.
    let s0 = sup.attempt_seed("synthetic", SEED, 0);
    let s1 = sup.attempt_seed("synthetic", SEED, 1);
    let expected = plain_merge(
        SEED,
        &[plain_shard(s0, 0), plain_shard(s1, 1), plain_shard(s0, 2)],
    );
    assert_eq!(outcome.report.render(), expected.render());
}

/// An interrupt observed mid-experiment marks the run `Interrupted`; the
/// merge gives interrupts precedence over degraded shards; and a fresh
/// run after the flag clears is byte-identical to never having been
/// interrupted.
#[test]
fn interrupt_wins_merge_precedence_and_resume_is_byte_identical() {
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let sup = Supervisor {
        interrupt: Some(flag),
        ..Supervisor::default()
    };
    let spec = synthetic_spec(plain_shard, 3);

    let reference = sup.run_sharded(&spec, SEED);
    assert_eq!(reference.status, RunStatus::Ok);

    flag.store(true, Ordering::SeqCst);
    let interrupted = sup.run_sharded(&spec, SEED);
    assert!(interrupted.interrupted());
    assert_eq!(interrupted.events, 0);

    flag.store(false, Ordering::SeqCst);
    let resumed = sup.run_sharded(&spec, SEED);
    assert_eq!(
        resumed.report.render(),
        reference.report.render(),
        "post-interrupt re-run must be byte-identical"
    );

    // Merge precedence: one Ok, one Degraded, one Interrupted shard must
    // merge to Interrupted (the campaign was stopped; degradation is
    // not this run's verdict).
    let ok = sup.run_shard(&spec, SEED, 0);
    let degraded = ShardRun {
        shard: 1,
        status: RunStatus::Degraded,
        attempts: 2,
        note: Some("synthetic degradation".into()),
        values: Vec::new(),
        recovery: Vec::new(),
        wall_s: 0.0,
        events: 0,
        telemetry: None,
        guards: Default::default(),
    };
    let mut cut = degraded.clone();
    cut.shard = 2;
    cut.status = RunStatus::Interrupted;
    cut.note = Some("interrupted before start".into());
    let merged = sup.merge_shard_runs(&spec, SEED, vec![ok, degraded, cut]);
    assert!(merged.interrupted());
    let note = merged.note.as_deref().unwrap_or_default();
    assert!(note.starts_with("shard 2/3:"), "note: {note}");
}

// ---------------------------------------------------------------------------
// 4. Telemetry merge.
// ---------------------------------------------------------------------------

/// Per-shard telemetry concatenates in shard order with span ids re-based
/// to stay unique, aggregates merge, and turning the plane on does not
/// change the deterministic artifact.
#[test]
fn telemetry_merges_in_shard_order_with_rebased_ids() {
    let shards = 3usize;
    let spec = synthetic_spec(telemetry_shard, shards);
    let sup = Supervisor {
        telemetry: true,
        ..Supervisor::default()
    };

    let outcome = sup.run_sharded(&spec, SEED);
    assert_eq!(outcome.status, RunStatus::Ok);
    let telemetry = outcome.telemetry.as_ref().expect("telemetry plane on");

    let (_, work) = telemetry
        .spans
        .iter()
        .find(|(name, _)| *name == "shard/work")
        .expect("merged span aggregate");
    assert_eq!(work.count, shards as u64);
    // Shard i's span lasts 1 + i simulated seconds: 1 + 2 + 3.
    assert!((work.total_s - 6.0).abs() < 1e-9, "{}", work.total_s);

    let (_, ticks) = telemetry
        .counters
        .iter()
        .find(|(name, _)| *name == "shard/ticks")
        .expect("merged counter");
    assert_eq!(*ticks, 1 + 2 + 3);

    // Enter edges must keep unique ids after the re-base.
    let mut enter_ids: Vec<u64> = telemetry
        .events
        .iter()
        .filter(|ev| ev.phase == SpanPhase::Enter)
        .map(|ev| ev.id)
        .collect();
    assert_eq!(enter_ids.len(), shards);
    enter_ids.sort_unstable();
    enter_ids.dedup();
    assert_eq!(enter_ids.len(), shards, "span ids collided across shards");

    // The plane is observational: same bytes with it off.
    let plain = Supervisor::default().run_sharded(&spec, SEED);
    assert!(plain.telemetry.is_none());
    assert_eq!(plain.report.render(), outcome.report.render());
}

// ---------------------------------------------------------------------------
// 5. Budget accounting and deterministic kill.
// ---------------------------------------------------------------------------

/// mlkit training charges must surface in the shard's event count — the
/// budget plane sees model fitting, not just simulation ticks.
#[test]
fn mlkit_training_charges_shard_budget_events() {
    let sup = Supervisor::default();
    let run = sup.run_shard(&synthetic_spec(mlkit_shard, 2), SEED, 0);
    assert_eq!(run.status, RunStatus::Ok, "{:?}", run.note);
    assert!(run.events > 0, "tree fit charged no budget events");
}

/// A starved event budget must kill fig15 (the longest experiment)
/// deterministically: every shard degrades with the budget-exhausted
/// note, and the merged verdict is `Degraded` with a shard prefix. This
/// is the wall-time barrier the sharding layer exists to bound — no
/// experiment, however long, can run away from the supervisor.
#[test]
fn starved_budget_kills_fig15_deterministically() {
    let (id, f) = registry_entry("fig15");
    let sup = Supervisor {
        event_budget: 20_000,
        retries: 0,
        ..Supervisor::default()
    };

    let outcome = sup.run_one(id, f, SEED);
    assert_eq!(outcome.status, RunStatus::Degraded);
    assert_eq!(outcome.events, 0);
    let note = outcome.note.as_deref().unwrap_or_default();
    assert!(note.starts_with("shard "), "note: {note}");
    assert!(note.contains("budget"), "note: {note}");

    // Deterministic: the same starved run reports the same note.
    let again = sup.run_one(id, f, SEED);
    assert_eq!(again.note, outcome.note);
}
