//! The cooperative cancellation plane's campaign-level contract.
//!
//! Three promises, end to end:
//! 1. an interrupted campaign is *resumable to byte-identity*: stop the
//!    pool mid-campaign (the SIGINT path, driven here through the
//!    supervisor's interrupt flag), re-run only the rows that did not
//!    finish `ok`, and the final manifest is byte-identical to an
//!    uninterrupted run — serial and on a `--jobs 4` pool;
//! 2. interruption never leaks threads: in-flight attempts observe the
//!    kill at their next budget charge and unwind, so the process-wide
//!    abandoned-thread count stays where it started;
//! 3. the plane itself is invisible: a healthy campaign with cancellation
//!    disarmed (`--no-cancel`) renders manifests byte-identical to one
//!    with it armed, quiet or under chaos — the token never mutates
//!    simulation state.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::runner::{self, manifest_from_entries, ManifestEntry, RunStatus, Supervisor};
use fiveg_wild::simcore::faults::FaultScenario;

/// A small real-experiment subset, cheap enough to run several times per
/// test in debug builds but spanning several subsystems.
fn subset() -> Vec<(&'static str, Experiment)> {
    let wanted = ["table1", "fig1", "fig2", "fig9", "table2"];
    let registry = experiments::registry();
    wanted
        .iter()
        .map(|w| {
            *registry
                .iter()
                .find(|(id, _)| id == w)
                .unwrap_or_else(|| panic!("registry lost {w}"))
        })
        .collect()
}

/// Uninterrupted reference manifest for the subset.
fn reference_manifest(sup: &Supervisor, jobs: usize, seed: u64, scenario: Option<&str>) -> String {
    let entries = subset();
    let outcomes = sup.run_registry_jobs(&entries, seed, jobs, |_, _| {});
    let rows: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
    manifest_from_entries(&rows, seed, scenario).render()
}

/// Runs the subset, flips the interrupt flag after `interrupt_after`
/// completions (deterministic — no wall-clock race), then resumes the
/// unfinished rows exactly the way `figures --resume` does: rows that
/// completed `ok` are kept verbatim, everything else re-runs. Returns the
/// resumed manifest plus how many rows the interrupted pass left
/// unfinished (interrupted or never started).
fn interrupt_then_resume(
    sup: &Supervisor,
    jobs: usize,
    seed: u64,
    scenario: Option<&str>,
    interrupt_after: usize,
) -> (String, usize) {
    let entries = subset();
    // Per-test flag (the real SIGINT static in `fiveg_bench::signal` is
    // process-global; tests in this binary run concurrently and must not
    // interrupt each other's campaigns).
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let mut interrupted_sup = sup.clone();
    interrupted_sup.interrupt = Some(flag);

    let slots: Mutex<Vec<Option<ManifestEntry>>> = Mutex::new(vec![None; entries.len()]);
    let finished = AtomicUsize::new(0);
    interrupted_sup.run_registry_jobs_partial(&entries, seed, jobs, |i, outcome| {
        let mut slots = slots.lock().expect("slots lock");
        slots[i] = Some(ManifestEntry::from_outcome(outcome));
        if finished.fetch_add(1, Ordering::SeqCst) + 1 == interrupt_after {
            flag.store(true, Ordering::SeqCst);
        }
    });

    let mut slots = slots.into_inner().expect("slots lock");
    let unfinished: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| !matches!(s, Some(e) if e.status == RunStatus::Ok))
        .map(|(i, _)| i)
        .collect();
    assert!(
        !unfinished.is_empty(),
        "the interrupt must leave work behind, or the test proves nothing"
    );

    // Resume: re-run only the unfinished rows (fresh supervisor, no
    // interrupt flag), slotting results back in registry order.
    let work: Vec<(&'static str, Experiment)> = unfinished.iter().map(|&i| entries[i]).collect();
    let outcomes = sup.run_registry_jobs(&work, seed, jobs, |_, _| {});
    for (&slot, outcome) in unfinished.iter().zip(&outcomes) {
        slots[slot] = Some(ManifestEntry::from_outcome(outcome));
    }
    let rows: Vec<ManifestEntry> = slots
        .into_iter()
        .map(|s| s.expect("every entry ran or resumed"))
        .collect();
    (
        manifest_from_entries(&rows, seed, scenario).render(),
        unfinished.len(),
    )
}

#[test]
fn interrupted_serial_campaign_resumes_to_byte_identity() {
    let sup = Supervisor::default();
    let leaked_before = runner::leaked_threads();
    let reference = reference_manifest(&sup, 1, 2021, None);
    let (resumed, unfinished) = interrupt_then_resume(&sup, 1, 2021, None, 2);
    // Serial pool: after the 2nd completion flips the flag, the lone
    // worker claims nothing further — every remaining row is unfinished.
    assert_eq!(unfinished, subset().len() - 2);
    assert_eq!(resumed, reference);
    assert_eq!(
        runner::leaked_threads(),
        leaked_before,
        "interruption must not leak attempt threads"
    );
}

#[test]
fn interrupted_parallel_campaign_resumes_to_byte_identity() {
    let sup = Supervisor::default();
    let leaked_before = runner::leaked_threads();
    let reference = reference_manifest(&sup, 4, 2021, None);
    // With 4 workers, rows in flight at the interrupt land as
    // `interrupted` (cancelled cooperatively) or finish inside the grace
    // window; either way the resume pass must restore byte-identity.
    let (resumed, _unfinished) = interrupt_then_resume(&sup, 4, 2021, None, 1);
    assert_eq!(resumed, reference);
    assert_eq!(
        runner::leaked_threads(),
        leaked_before,
        "interruption must not leak attempt threads"
    );
}

#[test]
fn disarmed_cancel_plane_is_byte_identical_on_quiet_campaigns() {
    let armed = Supervisor::default();
    let disarmed = Supervisor {
        cancel: false,
        ..Supervisor::default()
    };
    assert_eq!(
        reference_manifest(&armed, 1, 2021, None),
        reference_manifest(&disarmed, 1, 2021, None),
    );
}

#[test]
fn disarmed_cancel_plane_is_byte_identical_under_chaos() {
    let armed = Supervisor::with_scenario(FaultScenario::chaos());
    let disarmed = Supervisor {
        cancel: false,
        ..Supervisor::with_scenario(FaultScenario::chaos())
    };
    assert_eq!(
        reference_manifest(&armed, 4, 2021, Some("chaos")),
        reference_manifest(&disarmed, 4, 2021, Some("chaos")),
    );
}
