//! The paper-fidelity gate, end to end: the committed goldens validate
//! clean with full coverage, a perturbed artifact fails the gate, and the
//! report is byte-stable across reruns.

use fiveg_bench::expect;
use std::path::Path;

#[test]
fn committed_goldens_validate_clean_with_full_coverage() {
    let v = expect::validate_dir(Path::new("results"));
    assert_eq!(v.fails, 0, "committed results must pass:\n{}", v.report);
    assert_eq!(v.skipped, 0, "every expectation's artifact is committed");
    assert!(
        v.report.contains("artifacts covered: 40/40"),
        "all 40 artifacts covered:\n{}",
        v.report
    );
}

#[test]
fn committed_validation_txt_matches_a_fresh_run() {
    let fresh = expect::validate_dir(Path::new("results")).report;
    let committed =
        std::fs::read_to_string("results/validation.txt").expect("golden validation.txt");
    assert_eq!(
        fresh, committed,
        "results/validation.txt is stale — rerun `figures --validate results`"
    );
}

#[test]
fn perturbed_artifact_fails_the_gate() {
    let dir = std::env::temp_dir().join(format!("fiveg-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let fig1 = std::fs::read_to_string("results/fig1.txt").expect("fig1 golden");
    // Shift the 0-km RTT an order of magnitude: 6.0 → 60.0 ms.
    let broken = fig1.replace("     0     6.0", "     0    60.0");
    assert_ne!(fig1, broken, "perturbation must hit the artifact");
    std::fs::write(dir.join("fig1.txt"), broken).expect("write");
    let v = expect::validate_dir(&dir);
    assert!(v.fails >= 1, "out-of-band value must FAIL:\n{}", v.report);
    assert!(v.report.contains("FAIL"));
    assert!(
        v.skipped > 0,
        "expectations for absent artifacts are skipped, not failed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validation_report_is_byte_stable_across_runs() {
    let a = expect::validate_dir(Path::new("results")).report;
    let b = expect::validate_dir(Path::new("results")).report;
    assert_eq!(a, b);
}
