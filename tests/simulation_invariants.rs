//! Additional cross-crate invariants: conservation laws and monotonicities
//! the simulators must satisfy regardless of calibration.

use fiveg_wild::geo::mobility::MobilityModel;
use fiveg_wild::geo::servers::{carrier_pool, default_ue_location, Carrier};
use fiveg_wild::probes::speedtest::{ConnMode, SpeedtestHarness};
use fiveg_wild::radio::band::{Band, Direction};
use fiveg_wild::radio::cell::NetworkLayout;
use fiveg_wild::radio::handoff::{simulate_drive, BandSetting, HandoffConfig};
use fiveg_wild::radio::link::LinkState;
use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::simcore::stats::{mean, percentile};
use fiveg_wild::traces::lumos::TraceGenerator;
use fiveg_wild::video::abr::{fixed_track_abr, Mpc};
use fiveg_wild::video::asset::VideoAsset;
use fiveg_wild::video::player::{stream, PlayerConfig};
use fiveg_wild::web::loader::{PageLoader, WebRadio};
use fiveg_wild::web::site::WebsiteCorpus;

#[test]
fn player_stall_accounting_is_conserved() {
    // The per-chunk stall records must sum to the session's stall total,
    // and chunk wall times must be non-overlapping and ordered.
    let trace = TraceGenerator::new(5).lumos5g_trace(2);
    let asset = VideoAsset::five_g_default();
    let r = stream(
        &asset,
        &trace,
        &mut Mpc::fast(),
        &PlayerConfig::default(),
        0.0,
    );
    let sum: f64 = r.chunks.iter().map(|c| c.stall_s).sum();
    assert!(
        (sum - r.stall_time_s).abs() < 1e-9,
        "{sum} vs {}",
        r.stall_time_s
    );
    for w in r.chunks.windows(2) {
        assert!(w[1].start_s >= w[0].start_s + w[0].download_s - 1e-9);
    }
}

#[test]
fn player_wall_clock_accounts_for_content_plus_stalls() {
    // End of the last download ≥ startup + stalls + (played content −
    // final buffer): the player cannot create time.
    let trace = TraceGenerator::new(6).lumos5g_trace(4);
    let asset = VideoAsset::five_g_default();
    let r = stream(
        &asset,
        &trace,
        &mut fixed_track_abr(2),
        &PlayerConfig::default(),
        0.0,
    );
    let last = r.chunks.last().expect("non-empty");
    let wall_span = last.start_s + last.download_s;
    assert!(
        wall_span + 1e-6 >= r.startup_s + r.stall_time_s,
        "wall {wall_span} vs startup+stall {}",
        r.startup_s + r.stall_time_s
    );
}

#[test]
fn speedtest_p95_bounds_and_capacity_ceiling() {
    let h = SpeedtestHarness {
        ue: UeModel::GalaxyS20Ultra,
        link: LinkState {
            band: Band::N261,
            rsrp_dbm: -70.0,
            sa: false,
        },
        ue_location: default_ue_location(),
        seed: 9,
    };
    let pool = carrier_pool(Carrier::Verizon);
    let r = h.run(&pool[3], Direction::Downlink, ConnMode::Multi, 6);
    // p95 of repeats can never exceed the UE's modem ceiling.
    assert!(r.p95_mbps <= 3_400.0 + 1e-6, "{}", r.p95_mbps);
    assert!(r.p95_mbps > 0.0);
}

#[test]
fn handoff_step_size_does_not_change_the_story() {
    // Halving the simulation step must preserve the qualitative ordering
    // (it may change exact counts — different sampling of the same world).
    let layout = NetworkLayout::tmobile_drive_corridor(11);
    let mobility = MobilityModel::driving_10km();
    for step in [0.5, 0.25] {
        let cfg = HandoffConfig {
            step_s: step,
            ..HandoffConfig::default()
        };
        let sa = simulate_drive(&layout, &mobility, BandSetting::SaOnly, &cfg, 11);
        let nsa = simulate_drive(&layout, &mobility, BandSetting::NsaPlusLte, &cfg, 11);
        assert!(
            nsa.total_handoffs() > 3 * sa.total_handoffs(),
            "step {step}: NSA {} vs SA {}",
            nsa.total_handoffs(),
            sa.total_handoffs()
        );
    }
}

#[test]
fn page_load_time_is_monotone_in_payload() {
    // Same site, same radio: doubling every object's size cannot make the
    // page load faster.
    let corpus = WebsiteCorpus::generate(40, 13);
    let loader = PageLoader::new(UeModel::Pixel5, 13);
    for site in &corpus.sites[..20] {
        let base = loader.load(site, WebRadio::Lte, 0).plt_s;
        let mut bigger = site.clone();
        for s in &mut bigger.object_sizes {
            *s *= 2.0;
        }
        let slower = loader.load(&bigger, WebRadio::Lte, 0).plt_s;
        assert!(
            slower >= base - 1e-9,
            "site {}: {base} -> {slower}",
            site.id
        );
    }
}

#[test]
fn trace_corpus_statistics_are_seed_stable() {
    // Different seeds give different traces but the same corpus character:
    // the 5G/4G mean ratio stays in a tight band.
    let mut ratios = Vec::new();
    for seed in [1u64, 2, 3] {
        let gen = TraceGenerator::new(seed);
        let g5: Vec<f64> = (0..12).map(|i| gen.lumos5g_trace(i).mean_mbps()).collect();
        let g4: Vec<f64> = (0..12).map(|i| gen.lte_trace(i).mean_mbps()).collect();
        ratios.push(mean(&g5) / mean(&g4));
    }
    let spread = percentile(&ratios, 100.0) / percentile(&ratios, 0.0);
    assert!(spread < 1.6, "ratio spread across seeds: {ratios:?}");
}

#[test]
fn blocked_walks_never_outperform_clear_walks() {
    let gen = TraceGenerator::new(21);
    for i in 0..6 {
        let with = gen.lumos5g_trace(i).mean_mbps();
        let without = gen.lumos5g_trace_no_blockage(i).mean_mbps();
        assert!(without >= with, "trace {i}: {without} vs {with}");
    }
}
