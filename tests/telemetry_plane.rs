//! The telemetry plane's two core promises, end to end:
//!
//! 1. **Off means invisible** — a campaign run with the collector off
//!    renders a `manifest.json` byte-identical to one run with it on:
//!    installing the plane changes observation, never the world.
//! 2. **On means deterministic** — the per-experiment JSONL and Chrome
//!    trace renders carry only simulated time, so two identical runs, and
//!    a serial vs `--jobs 4` run, produce byte-identical files.
//!
//! Plus the coverage gate: one small campaign instruments enough of the
//! stack that the drained spans cross the radio, RRC, transport, and
//! video layers.

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::runner::{manifest_from_entries, ManifestEntry, RunOutcome, Supervisor};
use fiveg_bench::telemetry as telexport;
use fiveg_wild::simcore::telemetry::{self, AttemptTelemetry};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A cheap subset whose instrumented code paths span four layers: fig9
/// drives the radio, fig10 exercises the RRC machine, fig8 runs the TCP
/// simulator, fig17 streams video.
fn subset() -> Vec<(&'static str, Experiment)> {
    let wanted = ["fig9", "fig10", "fig8", "fig17"];
    let registry = experiments::registry();
    wanted
        .iter()
        .map(|w| {
            *registry
                .iter()
                .find(|(id, _)| id == w)
                .unwrap_or_else(|| panic!("registry lost {w}"))
        })
        .collect()
}

fn run(telemetry_on: bool, jobs: usize) -> Vec<RunOutcome> {
    let supervisor = Supervisor {
        telemetry: telemetry_on,
        ..Supervisor::default()
    };
    supervisor.run_registry_jobs(&subset(), 2021, jobs, |_, _| {})
}

/// The serial instrumented run, shared by several tests (the subset is
/// expensive in debug builds; the campaigns it is compared against are
/// what each test re-runs).
fn serial_on() -> &'static [RunOutcome] {
    static RUN: OnceLock<Vec<RunOutcome>> = OnceLock::new();
    RUN.get_or_init(|| run(true, 1))
}

/// The serial uninstrumented run, shared likewise.
fn serial_off() -> &'static [RunOutcome] {
    static RUN: OnceLock<Vec<RunOutcome>> = OnceLock::new();
    RUN.get_or_init(|| run(false, 1))
}

fn manifest_bytes(outcomes: &[RunOutcome]) -> String {
    let rows: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
    manifest_from_entries(&rows, 2021, None).render()
}

/// Per-experiment `(jsonl, chrome trace)` renders, in registry order.
fn renders(outcomes: &[RunOutcome]) -> Vec<(String, String)> {
    outcomes
        .iter()
        .map(|o| {
            let t = o.telemetry.clone().unwrap_or_default();
            (telexport::jsonl(&t), telexport::chrome_trace(o.id, &t))
        })
        .collect()
}

#[test]
fn manifest_is_byte_identical_with_the_plane_off_and_on() {
    let off = manifest_bytes(serial_off());
    let on = manifest_bytes(serial_on());
    assert_eq!(off, on, "observing the campaign must not change it");
}

#[test]
fn telemetry_renders_are_deterministic_across_identical_runs() {
    if !telemetry::compiled() {
        return;
    }
    let a = renders(serial_on());
    let b = renders(&run(true, 1));
    assert_eq!(a, b, "same campaign, same bytes");
    assert!(
        a.iter().all(|(jsonl, _)| !jsonl.is_empty()),
        "every instrumented experiment drains events"
    );
}

#[test]
fn telemetry_renders_are_identical_serial_vs_jobs_4() {
    if !telemetry::compiled() {
        return;
    }
    let serial = renders(serial_on());
    let parallel = renders(&run(true, 4));
    assert_eq!(
        serial, parallel,
        "worker count must not leak into sim-time data"
    );
}

#[test]
fn campaign_spans_cover_radio_rrc_transport_and_video() {
    if !telemetry::compiled() {
        return;
    }
    let mut total = AttemptTelemetry::default();
    for o in serial_on() {
        if let Some(t) = &o.telemetry {
            total.merge_aggregates(t);
        }
    }
    let names: BTreeSet<&str> = total.spans.iter().map(|(n, _)| *n).collect();
    for expected in [
        "radio/drive",
        "rrc/packet",
        "transport/run",
        "video/session",
        "video/segment",
    ] {
        assert!(
            names.contains(expected),
            "missing span {expected}; got {names:?}"
        );
    }
    let counters: BTreeSet<&str> = total.counters.iter().map(|(n, _)| *n).collect();
    assert!(counters.iter().any(|n| n.starts_with("radio/handoff/")));
    assert!(counters.iter().any(|n| n.starts_with("rrc/state/")));
}

#[test]
fn untelemetered_supervisor_yields_no_capture() {
    for outcome in serial_off() {
        assert!(outcome.telemetry.is_none());
    }
}
