//! Integration of the web corpus, page loader, power model, and DT
//! interface selection: §6's pipeline.

use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::web::ifselect::{label, measure_corpus, ModelSpec, SelectionModel};
use fiveg_wild::web::loader::PageLoader;
use fiveg_wild::web::site::WebsiteCorpus;

fn measurements(n: usize) -> Vec<fiveg_wild::web::ifselect::SiteMeasurement> {
    let corpus = WebsiteCorpus::generate(n, 77);
    let loader = PageLoader::new(UeModel::Pixel5, 77);
    measure_corpus(&corpus, &loader, 4)
}

#[test]
fn ground_truth_labels_shift_monotonically_with_alpha() {
    let ms = measurements(800);
    let mut last_5g = usize::MAX;
    for spec in ModelSpec::table6() {
        let n_5g: usize = label(&ms, &spec).iter().sum();
        assert!(
            n_5g <= last_5g,
            "{}: 5G labels must not grow with alpha ({n_5g} after {last_5g})",
            spec.id
        );
        last_5g = n_5g;
    }
}

#[test]
fn trained_models_route_like_table6_poles() {
    let mut ms = measurements(1200);
    let test = ms.split_off(ms.len() * 7 / 10);
    let specs = ModelSpec::table6();
    let m1 = SelectionModel::train(&ms, specs[0], 3).evaluate(&test);
    assert!(m1.use_5g > 2 * m1.use_4g, "M1: {}/{}", m1.use_4g, m1.use_5g);
    let m5 = SelectionModel::train(&ms, specs[4], 3).evaluate(&test);
    assert!(
        m5.use_4g > 20 * m5.use_5g.max(1),
        "M5: {}/{}",
        m5.use_4g,
        m5.use_5g
    );
}

#[test]
fn fig21_small_penalty_buys_large_savings() {
    // "even a 10% penalty over PLT … can reduce energy consumption by
    // almost 70%".
    let ms = measurements(800);
    let small_penalty: Vec<&fiveg_wild::web::ifselect::SiteMeasurement> = ms
        .iter()
        .filter(|m| (m.lte.plt_s / m.mmwave.plt_s - 1.0) < 0.2)
        .collect();
    assert!(!small_penalty.is_empty());
    let saving = fiveg_wild::simcore::stats::mean(
        &small_penalty
            .iter()
            .map(|m| 1.0 - m.lte.energy_j / m.mmwave.energy_j)
            .collect::<Vec<_>>(),
    );
    assert!((0.5..0.9).contains(&saving), "saving {saving}");
}

#[test]
fn balanced_model_saves_energy_within_plt_budget() {
    let mut ms = measurements(1200);
    let test = ms.split_off(ms.len() * 7 / 10);
    let model = SelectionModel::train(&ms, ModelSpec::table6()[2], 3);
    let (saving, penalty) = model.savings_vs_5g(&test);
    // §6.2: 15-66% energy saving.
    assert!((0.15..0.85).contains(&saving), "saving {saving}");
    assert!(penalty < 0.6, "penalty {penalty}");
}
