//! Integration tests for the rate-based controller plane and the bonded
//! multi-link transport:
//!
//! 1. property-style sweeps: BBR's pacing gain never leaves the published
//!    cycle and its filters stay monotone under adversarial seeded
//!    sample streams; NADA's rate never escapes `[RMIN, RMAX]` no matter
//!    how the congestion signal whipsaws;
//! 2. the bonded simulation honours the ambient fault plane (chaos runs
//!    terminate, conserve bits, and record recovery actions) and stays
//!    bit-deterministic under it;
//! 3. the `bonded-uplink` campaign artifact is byte-identical serially,
//!    on a `--jobs 4` pool, and with shard fan-out disabled, under both
//!    the quiet and the chaos scenario.

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::runner::{manifest_from_entries, ManifestEntry, RunStatus, Supervisor};
use fiveg_wild::simcore::faults::{self, FaultScenario, FaultSchedule};
use fiveg_wild::simcore::RngStream;
use fiveg_wild::transport::bbr::{Bbr, BbrState, DRAIN_GAIN, PROBE_BW_GAINS, STARTUP_GAIN};
use fiveg_wild::transport::nada::{Nada, RMAX_MBPS, RMIN_MBPS};
use fiveg_wild::transport::path::PathModel;
use fiveg_wild::transport::tcp::CcAlgo;
use fiveg_wild::transport::{BondedConfig, BondedSim};

const SEED: u64 = 2021;

fn link(rtt_ms: f64, capacity_mbps: f64) -> PathModel {
    PathModel {
        rtt_ms,
        loss_per_pkt: 1e-6,
        capacity_mbps,
        mss_bytes: 1460.0,
        queue_bdp: fiveg_wild::transport::path::DEFAULT_QUEUE_BDP,
    }
}

fn bonded_links() -> Vec<PathModel> {
    vec![link(30.0, 150.0), link(20.0, 1500.0)]
}

fn registry_entry(wanted: &str) -> (&'static str, Experiment) {
    *experiments::registry()
        .iter()
        .find(|(id, _)| *id == wanted)
        .unwrap_or_else(|| panic!("registry lost {wanted}"))
}

// ---------------------------------------------------------------------------
// 1. Controller properties under adversarial seeded inputs.
// ---------------------------------------------------------------------------

/// Whatever sample stream BBR sees, its pacing gain is always one of the
/// published values (STARTUP, DRAIN, or a PROBE_BW cycle entry — PROBE_RTT
/// paces at 1.0) and both windowed filters stay monotone.
#[test]
fn bbr_gain_never_leaves_the_published_cycle() {
    for seed in [1u64, 7, 2021, 90210] {
        let mut rng = RngStream::new(seed, "test/bbr-property");
        let mut bbr = Bbr::new(10.0);
        let mut t = 0.0;
        for step in 0..5000 {
            // Adversarial stream: bandwidth swings over 4 decades, RTT
            // jitters, queues appear and vanish, RTOs strike at random.
            let bw = 10.0_f64.powf(1.0 + 3.0 * rng.chance(0.5) as u8 as f64) * (0.5 + t % 1.0);
            let rtt = 0.02 + 0.05 * rng.normal(0.5, 0.3).clamp(0.0, 1.0);
            let qdelay = if rng.chance(0.3) { 0.0 } else { 0.01 };
            if rng.chance(0.001) {
                bbr.on_rto(t);
                assert_eq!(bbr.state(), BbrState::Startup, "RTO must reset to Startup");
            }
            bbr.on_sample(t, bw, rtt, qdelay);
            let g = bbr.pacing_gain();
            let published =
                g == STARTUP_GAIN || g == DRAIN_GAIN || g == 1.0 || PROBE_BW_GAINS.contains(&g);
            assert!(published, "seed {seed} step {step}: rogue gain {g}");
            assert!(
                bbr.pacing_rate_mbps() > 0.0,
                "pacing rate must stay positive"
            );
            t += 0.01;
        }
    }
}

/// NADA's rate stays inside `[RMIN, RMAX]` under a whipsawing congestion
/// signal (alternating clean and brutally congested feedback).
#[test]
fn nada_rate_is_boxed_under_whipsaw_feedback() {
    for seed in [3u64, 2021, 4242] {
        let mut rng = RngStream::new(seed, "test/nada-property");
        let mut nada = Nada::new(100.0);
        let mut t = 0.0;
        for step in 0..2000 {
            let congested = rng.chance(0.5);
            let d_queue = if congested { 400.0 } else { 0.0 };
            let loss = if congested { 0.3 } else { 0.0 };
            nada.on_loss_ratio_sample(loss);
            nada.on_feedback(t, d_queue, 30.0);
            assert!(
                (RMIN_MBPS..=RMAX_MBPS).contains(&nada.rate_mbps()),
                "seed {seed} step {step}: rate {} escaped [{RMIN_MBPS}, {RMAX_MBPS}]",
                nada.rate_mbps()
            );
            t += 0.1;
        }
    }
}

// ---------------------------------------------------------------------------
// 2. The bond under the ambient fault plane.
// ---------------------------------------------------------------------------

/// Chaos does not break the bond: the run terminates, goodput is finite
/// and non-negative, the DWRR split still sums to one, and the SBD group
/// count stays within `[1, links]`.
#[test]
fn bonded_run_survives_chaos_with_sane_outputs() {
    for algo in [CcAlgo::Nada, CcAlgo::Bbr] {
        let _guard = faults::install(FaultSchedule::generate(SEED, &FaultScenario::chaos()));
        let mut sim = BondedSim::new(
            BondedConfig::new(bonded_links(), algo),
            RngStream::new(SEED, "test/bond-chaos"),
        );
        let res = sim.run(15.0);
        assert!(res.mean_mbps.is_finite() && res.mean_mbps >= 0.0);
        let share_sum: f64 = res.per_link_share.iter().sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9 || share_sum == 0.0,
            "{algo:?}: DWRR shares must sum to 1 (or 0 on a dead bond), got {share_sum}"
        );
        let groups = res.group_count();
        assert!(
            (1..=2).contains(&groups),
            "{algo:?}: SBD group count {groups} out of [1, 2]"
        );
        assert!(res.max_queue_delay_s.is_finite() && res.max_queue_delay_s >= 0.0);
    }
}

/// The same seed reproduces the same chaos run bit-for-bit, and a quiet
/// run differs from a chaos run (the plane actually bites).
#[test]
fn bonded_chaos_run_is_deterministic_and_distinct_from_quiet() {
    let run_under = |scenario: Option<&FaultScenario>| {
        let _guard = scenario.map(|s| faults::install(FaultSchedule::generate(SEED, s)));
        let mut sim = BondedSim::new(
            BondedConfig::new(bonded_links(), CcAlgo::Nada),
            RngStream::new(SEED, "test/bond-determinism"),
        );
        let res = sim.run(15.0);
        (res.per_second_mbps, res.loss_events, res.sbd_groups)
    };
    let chaos = FaultScenario::chaos();
    let a = run_under(Some(&chaos));
    let b = run_under(Some(&chaos));
    assert_eq!(a, b, "same seed + scenario must be bit-identical");
    // Seed 2021's only chaos window inside 15 s is a loss burst, which in
    // the fluid model perturbs the loss tally (and recovery records), not
    // the delivered-bits trace — so compare the whole result tuple.
    let quiet = run_under(None);
    assert_ne!(a, quiet, "chaos must perturb the run");
}

// ---------------------------------------------------------------------------
// 3. Campaign byte-identity for the bonded-uplink artifact.
// ---------------------------------------------------------------------------

/// `bonded-uplink` renders byte-identically serially, on a `--jobs 4`
/// pool, and with shard fan-out disabled — under quiet and under chaos.
#[test]
fn bonded_uplink_artifact_bytes_survive_pool_and_no_shard() {
    let entries = vec![registry_entry("bonded-uplink")];
    let render = |sup: &Supervisor, jobs: usize| {
        let outcomes = sup.run_registry_jobs(&entries, SEED, jobs, |_, _| {});
        assert_eq!(outcomes[0].status, RunStatus::Ok, "{:?}", outcomes[0].note);
        let rows: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
        (
            manifest_from_entries(&rows, SEED, None).render(),
            outcomes[0].report.render(),
        )
    };

    for scenario in [None, Some(FaultScenario::chaos())] {
        let label = scenario.as_ref().map_or("quiet", |s| s.name.as_str());
        let sup = match &scenario {
            Some(sc) => Supervisor::with_scenario(sc.clone()),
            None => Supervisor::default(),
        };
        let serial = render(&sup, 1);
        let pooled = render(&sup, 4);
        assert_eq!(serial, pooled, "{label}: pool fan-out changed the bytes");
        let unsharded = render(
            &Supervisor {
                shard: false,
                ..match &scenario {
                    Some(sc) => Supervisor::with_scenario(sc.clone()),
                    None => Supervisor::default(),
                }
            },
            1,
        );
        assert_eq!(serial, unsharded, "{label}: --no-shard changed the bytes");
    }
}
