//! Fault-plane integration tests: determinism of schedules and campaigns,
//! bit-identical output on the disabled path, and chaos invariants (no
//! panics, non-negative throughput, bounded player buffer, termination)
//! with an aggressive scenario installed.

use fiveg_bench::experiments;
use fiveg_bench::runner::{RunStatus, Supervisor};
use fiveg_geo::mobility::MobilityModel;
use fiveg_wild::radio::blockage::{BlockageConfig, BlockageProcess};
use fiveg_wild::radio::cell::{NetworkLayout, RadioTech};
use fiveg_wild::radio::handoff::{simulate_drive, BandSetting, HandoffConfig};
use fiveg_wild::rrc::machine::RrcMachine;
use fiveg_wild::rrc::profile::{RrcConfigId, RrcProfile};
use fiveg_wild::simcore::faults::{self, FaultKind, FaultScenario, FaultSchedule};
use fiveg_wild::simcore::RngStream;
use fiveg_wild::transport::path::PathModel;
use fiveg_wild::transport::shaper::BandwidthTrace;
use fiveg_wild::transport::tcp::{TcpSim, TcpSimConfig};
use fiveg_wild::transport::udp::UdpFlow;
use fiveg_wild::video::abr::{build, AbrAlgo};
use fiveg_wild::video::asset::VideoAsset;
use fiveg_wild::video::player::{stream, PlayerConfig};

fn chaos_guard(seed: u64) -> faults::PlaneGuard {
    faults::install(FaultSchedule::generate(seed, &FaultScenario::chaos()))
}

fn test_path() -> PathModel {
    PathModel {
        rtt_ms: 20.0,
        loss_per_pkt: 1e-5,
        capacity_mbps: 2000.0,
        mss_bytes: 1460.0,
        queue_bdp: 1.0,
    }
}

/// Same (seed, scenario) → identical schedule, across independent
/// generations and scenario reconstructions.
#[test]
fn schedule_is_deterministic() {
    for name in FaultScenario::names() {
        let a = FaultSchedule::generate(77, &FaultScenario::by_name(name).unwrap());
        let b = FaultSchedule::generate(77, &FaultScenario::by_name(name).unwrap());
        assert_eq!(a, b, "scenario {name}");
    }
}

/// Same (seed, scenario) → identical supervised campaign output.
#[test]
fn chaos_campaign_is_deterministic() {
    let sup = Supervisor::with_scenario(FaultScenario::chaos());
    let registry = experiments::registry();
    let (id, f) = registry
        .iter()
        .find(|(id, _)| *id == "fig9")
        .copied()
        .expect("fig9 registered");
    let a = sup.run_one(id, f, 2021);
    let b = sup.run_one(id, f, 2021);
    assert_eq!(a.report.render(), b.report.render());
    assert_eq!(a.attempts, b.attempts);
}

/// With no scenario, the supervised runner's output is bit-identical to a
/// direct (unsupervised, plane-free) call — supervision itself is free.
#[test]
fn supervised_run_without_scenario_is_bit_identical() {
    let sup = Supervisor::default();
    for id in ["fig9", "table2"] {
        let direct = experiments::run(id, 2021).expect(id).render();
        let (sid, f) = experiments::registry()
            .iter()
            .find(|(rid, _)| *rid == id)
            .copied()
            .unwrap();
        let supervised = sup.run_one(sid, f, 2021);
        assert_eq!(supervised.status, RunStatus::Ok);
        assert_eq!(supervised.report.render(), direct, "{id}");
    }
}

/// A thread that had a plane installed and dropped produces plane-free
/// output afterwards: no residue.
#[test]
fn dropped_plane_leaves_no_residue() {
    let baseline = {
        let layout = NetworkLayout::tmobile_drive_corridor(5);
        let m = MobilityModel::driving_10km();
        simulate_drive(
            &layout,
            &m,
            BandSetting::NsaPlusLte,
            &HandoffConfig::default(),
            5,
        )
        .total_handoffs()
    };
    let chaotic = {
        let _guard = chaos_guard(5);
        let layout = NetworkLayout::tmobile_drive_corridor(5);
        let m = MobilityModel::driving_10km();
        simulate_drive(
            &layout,
            &m,
            BandSetting::NsaPlusLte,
            &HandoffConfig::default(),
            5,
        )
        .total_handoffs()
    };
    let after = {
        let layout = NetworkLayout::tmobile_drive_corridor(5);
        let m = MobilityModel::driving_10km();
        simulate_drive(
            &layout,
            &m,
            BandSetting::NsaPlusLte,
            &HandoffConfig::default(),
            5,
        )
        .total_handoffs()
    };
    assert_eq!(baseline, after, "guard drop restores the default path");
    // The chaos run is valid either way; record that it ran to completion.
    assert!(chaotic > 0);
}

/// Chaos invariant: the TCP simulation terminates with non-negative, finite
/// throughput under the most aggressive scenario.
#[test]
fn tcp_survives_chaos() {
    let _guard = chaos_guard(11);
    let mut sim = TcpSim::new(
        test_path(),
        TcpSimConfig::multi(4),
        RngStream::new(11, "tcp"),
    );
    let res = sim.run(30.0);
    assert!(res.mean_mbps >= 0.0 && res.mean_mbps.is_finite());
    assert!(res.mean_mbps <= test_path().capacity_mbps * 1.001);
    for s in &res.per_second_mbps {
        assert!(*s >= 0.0 && s.is_finite(), "per-second sample {s}");
    }
}

/// Chaos invariant: UDP results stay in range at every time point.
#[test]
fn udp_survives_chaos() {
    let _guard = chaos_guard(13);
    let flow = UdpFlow::new(1500.0);
    let path = test_path();
    for t in 0..3600 {
        let r = flow.run_at(&path, t as f64);
        assert!(r.achieved_mbps >= 0.0 && r.achieved_mbps <= 1500.0);
        assert!((0.0..=1.0).contains(&r.loss_fraction), "t={t}");
    }
}

/// Chaos invariant: shaped transfers terminate (stall windows are finite)
/// and never finish faster than the fault-free transfer.
#[test]
fn shaper_survives_chaos() {
    let trace = BandwidthTrace::new(vec![10.0, 50.0, 5.0, 80.0], 1.0);
    let clean = trace.transfer_time_s(5e6, 2.0);
    let _guard = chaos_guard(17);
    let chaotic = trace.transfer_time_s(5e6, 2.0);
    assert!(
        chaotic.is_finite(),
        "stall windows must not wedge transfers"
    );
    assert!(chaotic >= clean - 1e-9, "faults only slow transfers down");
}

/// Chaos invariant: the drive simulation completes, its timeline covers the
/// whole route, and events stay time-ordered.
#[test]
fn drive_survives_chaos() {
    let _guard = chaos_guard(19);
    let layout = NetworkLayout::tmobile_drive_corridor(19);
    let m = MobilityModel::driving_10km();
    for setting in BandSetting::all() {
        let r = simulate_drive(&layout, &m, setting, &HandoffConfig::default(), 19);
        assert!(!r.timeline.is_empty());
        let expected = (m.duration_s() / HandoffConfig::default().step_s) as usize;
        assert!(
            r.timeline.len() >= expected,
            "{setting:?} timeline truncated"
        );
        for w in r.events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s, "{setting:?} events out of order");
        }
        let (lte, nsa, sa, outage) = r.radio_share();
        for share in [lte, nsa, sa, outage] {
            assert!((0.0..=1.0).contains(&share));
        }
    }
}

/// Cell outages actually darken towers: during an outage window the dark
/// tower is invisible to `best_cell_at` while `best_cell` still sees it.
#[test]
fn cell_outage_darkens_targeted_towers() {
    let scenario = FaultScenario::dead_zone_drive();
    let schedule = FaultSchedule::generate(23, &scenario);
    let event = schedule
        .events_of(FaultKind::CellOutage)
        .next()
        .expect("outages scheduled")
        .clone();
    let _guard = faults::install(schedule);
    let layout = NetworkLayout::tmobile_drive_corridor(23);
    let n = layout.towers.len() as u64;
    let mid = event.start_s + event.duration_s / 2.0;
    let dark: Vec<usize> = layout
        .towers
        .iter()
        .enumerate()
        .filter(|(_, t)| t.id % n == event.target % n)
        .map(|(i, _)| i)
        .collect();
    assert!(!dark.is_empty());
    for &idx in &dark {
        let p = layout.towers[idx].pos;
        let timeless = layout.best_cell(p, false, |t| {
            t.tech() == RadioTech::Lte || t.tech() == RadioTech::Nr
        });
        let timed = layout.best_cell_at(p, false, mid, |t| {
            t.tech() == RadioTech::Lte || t.tech() == RadioTech::Nr
        });
        // Standing at the dark tower, the timeless query picks it; the
        // timed query must pick something else (or nothing).
        if timeless.map(|(i, _)| i) == Some(idx) {
            assert_ne!(
                timed.map(|(i, _)| i),
                Some(idx),
                "tower {idx} still serving"
            );
        }
    }
}

/// Blockage storms make mmWave links measurably worse.
#[test]
fn blockage_storm_increases_blocked_fraction() {
    let frac = |guard: bool, seed: u64| {
        let _g = guard.then(|| {
            faults::install(FaultSchedule::generate(
                seed,
                &FaultScenario::blockage_storm(),
            ))
        });
        let mut p = BlockageProcess::new(BlockageConfig::default(), RngStream::new(seed, "blk"));
        let steps = 7200;
        (0..steps).filter(|_| p.advance(0.5, 1.33)).count() as f64 / steps as f64
    };
    let clean = frac(false, 29);
    let stormy = frac(true, 29);
    assert!(
        stormy > clean,
        "storms must increase blockage: {stormy} vs {clean}"
    );
}

/// Chaos invariant: RRC access delays stay non-negative and finite, and
/// time never runs backwards through resets and stuck timers.
#[test]
fn rrc_survives_chaos() {
    let _guard = chaos_guard(31);
    let mut m = RrcMachine::new(
        RrcProfile::for_config(RrcConfigId::VzNsaMmWave),
        RngStream::new(31, "rrc"),
    );
    let mut now = 0.0;
    let mut rng = RngStream::new(31, "rrc/arrivals");
    for _ in 0..2000 {
        now += rng.exponential(1.0 / 1_500.0); // ~1.5 s mean inter-arrival
        let d = m.on_packet(now);
        assert!(d.delay_ms >= 0.0 && d.delay_ms.is_finite());
        now += d.delay_ms;
    }
}

/// Chaos invariant: the DASH player terminates with a bounded buffer and
/// sane QoE decomposition even when the link stalls under fault windows.
#[test]
fn video_player_survives_chaos() {
    let _guard = chaos_guard(37);
    let asset = VideoAsset::five_g_default();
    let trace = BandwidthTrace::new(vec![120.0, 30.0, 400.0, 10.0, 250.0], 1.0);
    let cfg = PlayerConfig::default();
    let mut abr = build(AbrAlgo::Bola);
    let session = stream(&asset, &trace, abr.as_mut(), &cfg, 0.0);
    assert_eq!(session.chunks.len(), asset.n_chunks(), "played to the end");
    assert!(session.stall_time_s >= 0.0 && session.stall_time_s.is_finite());
    assert!(session.play_time_s > 0.0);
    assert!(session.avg_norm_bitrate >= 0.0 && session.avg_norm_bitrate <= 1.0 + 1e-9);
    for c in &session.chunks {
        // The buffer implied by each chunk never exceeds cap + one chunk.
        assert!(c.stall_s >= 0.0 && c.download_s >= 0.0);
    }
}

/// Power-monitor dropouts swallow samples but never corrupt the trace.
#[test]
fn power_monitor_dropouts_leave_gaps_not_garbage() {
    use fiveg_wild::power::monitor::{Activity, SoftwareMonitor};
    let clean_len = {
        let mut rng = RngStream::new(41, "sw");
        SoftwareMonitor::new(10.0)
            .record(|_| 1000.0, Activity::IdleScreenOn, 600.0, &mut rng)
            .len()
    };
    let _guard = faults::install(FaultSchedule::generate(41, &FaultScenario::power_glitch()));
    let mut rng = RngStream::new(41, "sw");
    let trace =
        SoftwareMonitor::new(10.0).record(|_| 1000.0, Activity::IdleScreenOn, 600.0, &mut rng);
    assert!(trace.len() < clean_len, "dropouts must swallow samples");
    assert!(trace.len() > clean_len / 2, "but not most of the trace");
}

/// The whole registry completes under chaos with every report rendered —
/// kept to a subset here for test-time; `figures --chaos chaos all`
/// exercises the full campaign.
#[test]
fn registry_subset_completes_under_chaos() {
    let sup = Supervisor::with_scenario(FaultScenario::chaos());
    let subset: Vec<_> = experiments::registry()
        .into_iter()
        .filter(|(id, _)| ["table2", "fig9", "fig10"].contains(id))
        .collect();
    assert_eq!(subset.len(), 3);
    let outcomes = sup.run_registry(&subset, 2021);
    for o in &outcomes {
        assert!(!o.report.render().is_empty());
    }
}
