//! The guard plane's two core promises, end to end:
//!
//! 1. **Observation only** — a campaign run with the invariant guards on
//!    renders a `manifest.json` and reports byte-identical to one run
//!    with them off: guards check the world, they never change it (they
//!    draw no randomness and mutate no simulation state).
//! 2. **Quiet means clean** — on the unfaulted simulation the guarded
//!    subset records zero violations across radio, RRC, transport, and
//!    video, and the check counters prove the hooks actually ran.
//!
//! Mirrors `tests/telemetry_plane.rs` for the sibling plane.

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::runner::{manifest_from_entries, ManifestEntry, RunOutcome, Supervisor};
use fiveg_wild::simcore::guard::{self, GuardPolicy};
use std::sync::OnceLock;

/// The same four-layer subset the telemetry plane test uses: fig9 drives
/// the radio, fig10 exercises the RRC machine, fig8 runs the TCP
/// simulator, fig17 streams video.
fn subset() -> Vec<(&'static str, Experiment)> {
    let wanted = ["fig9", "fig10", "fig8", "fig17"];
    let registry = experiments::registry();
    wanted
        .iter()
        .map(|w| {
            *registry
                .iter()
                .find(|(id, _)| id == w)
                .unwrap_or_else(|| panic!("registry lost {w}"))
        })
        .collect()
}

fn run(guards: Option<GuardPolicy>, jobs: usize) -> Vec<RunOutcome> {
    let supervisor = Supervisor {
        guards,
        ..Supervisor::default()
    };
    supervisor.run_registry_jobs(&subset(), 2021, jobs, |_, _| {})
}

/// The serial guarded run, shared by several tests (the subset is
/// expensive in debug builds).
fn guarded() -> &'static [RunOutcome] {
    static RUN: OnceLock<Vec<RunOutcome>> = OnceLock::new();
    RUN.get_or_init(|| run(Some(GuardPolicy::Record), 1))
}

/// The serial unguarded run, shared likewise.
fn unguarded() -> &'static [RunOutcome] {
    static RUN: OnceLock<Vec<RunOutcome>> = OnceLock::new();
    RUN.get_or_init(|| run(None, 1))
}

fn manifest_bytes(outcomes: &[RunOutcome]) -> String {
    let rows: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
    manifest_from_entries(&rows, 2021, None).render()
}

fn report_bytes(outcomes: &[RunOutcome]) -> Vec<String> {
    outcomes.iter().map(|o| o.report.render()).collect()
}

#[test]
fn manifest_is_byte_identical_with_guards_off_and_on() {
    let off = manifest_bytes(unguarded());
    let on = manifest_bytes(guarded());
    assert_eq!(off, on, "checking invariants must not change the campaign");
}

#[test]
fn reports_are_byte_identical_with_guards_off_and_on() {
    let off = report_bytes(unguarded());
    let on = report_bytes(guarded());
    assert_eq!(off, on, "guard hooks must not perturb any artifact byte");
}

#[test]
fn guarded_manifest_is_identical_serial_vs_jobs_4() {
    let serial = manifest_bytes(guarded());
    let parallel = manifest_bytes(&run(Some(GuardPolicy::Record), 4));
    assert_eq!(
        serial, parallel,
        "worker count must not leak into guarded artifacts"
    );
}

#[test]
fn quiet_campaign_is_violation_free_and_actually_checked() {
    if !guard::compiled() {
        return;
    }
    let mut checks = 0u64;
    for o in guarded() {
        assert!(
            o.guards.is_clean(),
            "{}: quiet run recorded violations: {:?}",
            o.id,
            o.guards.violations
        );
        checks += o.guards.checks;
    }
    // The counter proves the hooks ran — a plane that silently never
    // fires would also be "clean".
    assert!(
        checks > 1_000,
        "only {checks} guard checks across the subset — hooks not wired?"
    );
}

#[test]
fn unguarded_supervisor_records_nothing() {
    for o in unguarded() {
        assert!(o.guards.is_clean());
        assert_eq!(
            o.guards.checks, 0,
            "{}: plane off must not count checks",
            o.id
        );
    }
}
