//! The parallel scheduler's determinism contract, end to end.
//!
//! Two halves of the same promise:
//! 1. a campaign run on a `--jobs 4` worker pool renders a `manifest.json`
//!    byte-identical to the serial run — under a quiet plane and under a
//!    chaos scenario — because each experiment's world is a pure function
//!    of (id, seed, attempt) and rows are collected in registry order;
//! 2. the radio hot-path caches (per-band FSPL/EIRP tables, shadowing
//!    node tiles, per-segment link budgets) are *bit*-identical to the
//!    uncached math over a dense distance/band grid, so the parallel
//!    speedup never buys a different world.

use fiveg_bench::experiments::{self, Experiment};
use fiveg_bench::runner::{manifest_from_entries, ManifestEntry, Supervisor};
use fiveg_wild::geo::route::Point;
use fiveg_wild::radio::band::{Band, BandClass, Direction};
use fiveg_wild::radio::link::{link_capacity_mbps, LinkBudget, LinkState};
use fiveg_wild::radio::propagation::{
    path_loss_db, path_loss_db_uncached, rsrp_dbm, ShadowingField,
};
use fiveg_wild::radio::ue::UeModel;
use fiveg_wild::simcore::faults::FaultScenario;

/// A small real-experiment subset that is cheap enough to run twice per
/// scenario in debug tests but still spans several subsystems.
fn subset() -> Vec<(&'static str, Experiment)> {
    let wanted = ["table1", "fig1", "fig2", "fig9", "table2", "fig11"];
    let registry = experiments::registry();
    wanted
        .iter()
        .map(|w| {
            *registry
                .iter()
                .find(|(id, _)| id == w)
                .unwrap_or_else(|| panic!("registry lost {w}"))
        })
        .collect()
}

fn manifest_bytes(sup: &Supervisor, jobs: usize, seed: u64, scenario: Option<&str>) -> String {
    let entries = subset();
    let outcomes = sup.run_registry_jobs(&entries, seed, jobs, |_, _| {});
    let rows: Vec<ManifestEntry> = outcomes.iter().map(ManifestEntry::from_outcome).collect();
    manifest_from_entries(&rows, seed, scenario).render()
}

#[test]
fn quiet_campaign_is_byte_identical_serial_vs_jobs_4() {
    let sup = Supervisor::default();
    let serial = manifest_bytes(&sup, 1, 2021, None);
    let parallel = manifest_bytes(&sup, 4, 2021, None);
    assert_eq!(serial, parallel);
}

#[test]
fn chaos_campaign_is_byte_identical_serial_vs_jobs_4() {
    let sup = Supervisor::with_scenario(FaultScenario::chaos());
    let serial = manifest_bytes(&sup, 1, 2021, Some("chaos"));
    let parallel = manifest_bytes(&sup, 4, 2021, Some("chaos"));
    assert_eq!(serial, parallel);
}

#[test]
fn cached_propagation_matches_uncached_over_dense_grid() {
    for band in Band::ALL {
        for blocked in [false, true] {
            let mut d = 0.5_f64;
            while d < 3000.0 {
                let cached = path_loss_db(band, d, blocked);
                let raw = path_loss_db_uncached(band, d, blocked);
                assert_eq!(
                    cached.to_bits(),
                    raw.to_bits(),
                    "path loss diverged: {band:?} blocked={blocked} at {d} m"
                );
                // rsrp_dbm routes through the EIRP table too; pin it against
                // a from-scratch recompute (the same calibrated per-class
                // EIRP constants as `propagation::effective_eirp_dbm`).
                let eirp = match band.class() {
                    BandClass::MmWave => 35.0,
                    BandClass::LowBand => 33.0,
                    BandClass::Lte => 49.0,
                };
                let expect = (eirp - path_loss_db_uncached(band, d, blocked)).min(-44.0);
                assert_eq!(
                    rsrp_dbm(band, d, blocked).to_bits(),
                    expect.to_bits(),
                    "rsrp diverged: {band:?} blocked={blocked} at {d} m"
                );
                d *= 1.07;
            }
        }
    }
}

#[test]
fn cached_shadowing_matches_uncached_over_dense_grid() {
    let field = ShadowingField::new(0xBEEF);
    let classes = [BandClass::MmWave, BandClass::LowBand, BandClass::Lte];
    for tower in 0..4_u64 {
        for ix in -6..=6_i64 {
            for iy in -6..=6_i64 {
                let p = Point {
                    x: ix as f64 * 17.3,
                    y: iy as f64 * 23.1,
                };
                let class = classes[(tower as usize + (ix + 6) as usize) % classes.len()];
                let cached = field.sample_db(tower, class, p);
                let raw = field.sample_db_uncached(tower, class, p);
                assert_eq!(
                    cached.to_bits(),
                    raw.to_bits(),
                    "shadowing diverged: tower {tower} at {p:?}"
                );
            }
        }
    }
    // Revisit with a now-warm cache and in a different order: still
    // bit-identical (cache hits serve the same values the misses stored).
    for tower in (0..4_u64).rev() {
        let p = Point { x: -31.9, y: 57.7 };
        assert_eq!(
            field.sample_db(tower, BandClass::MmWave, p).to_bits(),
            field
                .sample_db_uncached(tower, BandClass::MmWave, p)
                .to_bits(),
        );
    }
}

#[test]
fn link_budget_matches_scalar_capacity_over_dense_grid() {
    for ue in [UeModel::GalaxyS10, UeModel::GalaxyS20Ultra, UeModel::Pixel5] {
        for band in Band::ALL {
            for sa in [false, true] {
                for dir in [Direction::Downlink, Direction::Uplink] {
                    let budget = LinkBudget::new(ue, band, sa, dir);
                    let mut rsrp = -150.0_f64;
                    while rsrp <= -20.0 {
                        let link = LinkState {
                            band,
                            rsrp_dbm: rsrp,
                            sa,
                        };
                        assert_eq!(
                            budget.capacity_mbps(rsrp).to_bits(),
                            link_capacity_mbps(ue, &link, dir).to_bits(),
                            "budget diverged: {ue:?} {band:?} sa={sa} {dir:?} rsrp={rsrp}"
                        );
                        rsrp += 0.7;
                    }
                }
            }
        }
    }
}
