//! The whole reproduction, end to end: every registered experiment must
//! run and render a non-trivial report, deterministically.

use fiveg_bench::experiments;

/// The fast experiments run in the suite; the heavy corpus-scale ones are
/// exercised by `figures all` (see EXPERIMENTS.md) and smoke-checked here
/// via the registry.
const FAST: &[&str] = &[
    "table1", "fig1", "fig2", "fig9", "fig10", "table2", "table7", "fig11", "fig12", "table8",
    "fig26", "table3",
];

#[test]
fn registry_covers_every_paper_artifact() {
    let ids: Vec<&str> = experiments::registry().iter().map(|(id, _)| *id).collect();
    // Every §3–§6 table/figure with quantitative content.
    for required in [
        "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        "table2", "table7", "fig11", "fig12", "table8", "fig13", "fig14", "fig26", "fig15",
        "fig16", "table3", "table9", "fig17", "fig18a", "fig18b", "fig18c", "fig19", "fig20",
        "fig21", "table6", "fig23", "fig24",
    ] {
        assert!(ids.contains(&required), "missing experiment {required}");
    }
}

#[test]
fn fast_experiments_render_deterministic_reports() {
    for id in FAST {
        let a = experiments::run(id, 7).unwrap_or_else(|| panic!("unknown id {id}"));
        let b = experiments::run(id, 7).expect("known id");
        assert_eq!(a.body, b.body, "{id} must be deterministic");
        assert!(a.body.lines().count() >= 3, "{id} report too small");
        assert!(!a.title.is_empty());
    }
}

#[test]
fn seeds_change_measurements_but_not_structure() {
    let a = experiments::run("fig9", 1).expect("fig9");
    let b = experiments::run("fig9", 2).expect("fig9");
    assert_eq!(
        a.body.lines().count(),
        b.body.lines().count(),
        "same table shape across seeds"
    );
    assert_ne!(a.body, b.body, "different worlds give different counts");
}
