//! Cross-crate integration tests for the §3 performance pipeline:
//! geo (server pools) → radio (link budget) → transport (TCP/UDP) →
//! probes (Speedtest harness).

use fiveg_wild::geo::servers::{azure_regions, carrier_pool, default_ue_location, Carrier};
use fiveg_wild::probes::speedtest::{ConnMode, SpeedtestHarness};
use fiveg_wild::radio::band::{Band, Direction};
use fiveg_wild::radio::link::LinkState;
use fiveg_wild::radio::ue::UeModel;

fn harness(ue: UeModel, band: Band, sa: bool) -> SpeedtestHarness {
    let rsrp = match band {
        Band::N260 | Band::N261 => -70.0,
        _ => -85.0,
    };
    SpeedtestHarness {
        ue,
        link: LinkState {
            band,
            rsrp_dbm: rsrp,
            sa,
        },
        ue_location: default_ue_location(),
        seed: 4242,
    }
}

fn sorted_pool(carrier: Carrier) -> Vec<fiveg_wild::geo::servers::ServerInfo> {
    let ue = default_ue_location();
    let mut pool = carrier_pool(carrier);
    pool.sort_by(|a, b| {
        a.distance_km(ue)
            .partial_cmp(&b.distance_km(ue))
            .expect("finite")
    });
    pool
}

#[test]
fn fig2_latency_ordering_holds_at_every_server() {
    // mmWave < low-band < LTE for every server (Fig 2), and RTT grows with
    // distance for every band.
    let mm = harness(UeModel::GalaxyS20Ultra, Band::N261, false);
    let lb = harness(UeModel::GalaxyS20Ultra, Band::N5Dss, false);
    let lte = harness(UeModel::GalaxyS20Ultra, Band::LteMidBand, false);
    let pool = sorted_pool(Carrier::Verizon);
    let mut last_mm = 0.0;
    for s in pool.iter().step_by(4) {
        let (r_mm, r_lb, r_lte) = (
            mm.latency_ms(s, 10),
            lb.latency_ms(s, 10),
            lte.latency_ms(s, 10),
        );
        assert!(
            r_mm < r_lb && r_lb < r_lte,
            "{}: {r_mm} {r_lb} {r_lte}",
            s.name
        );
        assert!(
            (5.0..10.0).contains(&(r_lb - r_mm)),
            "low-band adds 6-8 ms: {}",
            r_lb - r_mm
        );
        assert!(r_mm >= last_mm - 2.0, "RTT must grow with distance");
        last_mm = r_mm;
    }
}

#[test]
fn fig3_multi_conn_flat_single_conn_decays() {
    let h = harness(UeModel::GalaxyS20Ultra, Band::N261, false);
    let pool = sorted_pool(Carrier::Verizon);
    let near = &pool[0];
    let far = pool.last().expect("non-empty");
    let near_multi = h
        .run(near, Direction::Downlink, ConnMode::Multi, 4)
        .p95_mbps;
    let far_multi = h.run(far, Direction::Downlink, ConnMode::Multi, 4).p95_mbps;
    assert!(near_multi > 3_000.0 && far_multi > 3_000.0);
    assert!(
        (near_multi - far_multi).abs() / near_multi < 0.1,
        "flat vs distance"
    );
    let near_single = h
        .run(near, Direction::Downlink, ConnMode::SingleTuned, 4)
        .p95_mbps;
    let far_single = h
        .run(far, Direction::Downlink, ConnMode::SingleTuned, 4)
        .p95_mbps;
    assert!(
        near_single > 2.0 * far_single,
        "{near_single} vs {far_single}"
    );
}

#[test]
fn fig6_sa_throughput_is_half_of_nsa() {
    let sa = harness(UeModel::GalaxyS20Ultra, Band::N71, true);
    let nsa = harness(UeModel::GalaxyS20Ultra, Band::N71, false);
    let pool = sorted_pool(Carrier::TMobile);
    let near = &pool[0];
    let r_sa = sa
        .run(near, Direction::Downlink, ConnMode::Multi, 4)
        .p95_mbps;
    let r_nsa = nsa
        .run(near, Direction::Downlink, ConnMode::Multi, 4)
        .p95_mbps;
    let ratio = r_sa / r_nsa;
    assert!((0.4..0.6).contains(&ratio), "SA/NSA = {ratio}");
}

#[test]
fn fig8_transport_setting_ordering() {
    // UDP ≥ TCP-8 > 1-TCP tuned > 1-TCP default at every Azure region.
    let h = harness(UeModel::Pixel5, Band::N261, false);
    for region in azure_regions() {
        let udp = h
            .run(&region, Direction::Downlink, ConnMode::Udp, 2)
            .p95_mbps;
        let tcp8 = h
            .run(&region, Direction::Downlink, ConnMode::TcpN(8), 4)
            .p95_mbps;
        let tuned = h
            .run(&region, Direction::Downlink, ConnMode::SingleTuned, 4)
            .p95_mbps;
        let default = h
            .run(&region, Direction::Downlink, ConnMode::SingleDefault, 4)
            .p95_mbps;
        assert!(
            udp >= tcp8 * 0.98,
            "{}: udp {udp} vs tcp8 {tcp8}",
            region.name
        );
        assert!(
            tcp8 > tuned,
            "{}: tcp8 {tcp8} vs tuned {tuned}",
            region.name
        );
        assert!(
            tuned > default,
            "{}: tuned {tuned} vs default {default}",
            region.name
        );
    }
}

#[test]
fn fig23_carrier_aggregation_gain() {
    let pool = sorted_pool(Carrier::Verizon);
    let near = &pool[0];
    let px5 = harness(UeModel::Pixel5, Band::N261, false)
        .run(near, Direction::Downlink, ConnMode::Multi, 4)
        .p95_mbps;
    let s20 = harness(UeModel::GalaxyS20Ultra, Band::N261, false)
        .run(near, Direction::Downlink, ConnMode::Multi, 4)
        .p95_mbps;
    let gain = s20 / px5 - 1.0;
    assert!((0.4..0.7).contains(&gain), "8CC over 4CC: {gain}");
}

#[test]
fn fig24_capped_servers_are_bound() {
    let h = harness(UeModel::GalaxyS20Ultra, Band::N261, false);
    for s in fiveg_wild::geo::servers::minnesota_pool() {
        let r = h.run(&s, Direction::Downlink, ConnMode::Multi, 3);
        if let Some(cap) = s.cap_mbps {
            assert!(
                r.p95_mbps <= cap * 1.01,
                "{}: {} > cap {}",
                s.name,
                r.p95_mbps,
                cap
            );
            assert!(r.p95_mbps > cap * 0.9, "{}: should reach its cap", s.name);
        }
    }
}
