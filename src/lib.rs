//! # fiveg-wild
//!
//! A simulation-based reproduction of *"A Variegated Look at 5G in the Wild:
//! Performance, Power, and QoE Implications"* (Narayanan, Zhang, et al.,
//! SIGCOMM 2021).
//!
//! This facade crate re-exports the workspace crates under short names. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every regenerated table and figure.

pub use fiveg_geo as geo;
pub use fiveg_mlkit as mlkit;
pub use fiveg_power as power;
pub use fiveg_probes as probes;
pub use fiveg_radio as radio;
pub use fiveg_rrc as rrc;
pub use fiveg_simcore as simcore;
pub use fiveg_traces as traces;
pub use fiveg_transport as transport;
pub use fiveg_video as video;
pub use fiveg_web as web;
